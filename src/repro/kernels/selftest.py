"""Bitwise parity gate for compiled kernel backends.

A backend registers only if :func:`parity_check` passes: every output
of its three geometry entry points must be **bit-for-bit identical**
to the pure-numpy kernels on a deterministic probe corpus that covers
the branchy cases — degenerate (zero-length) segments, equal-length
ties in both id orders, huge and tiny coordinates, anti-parallel pairs
(negative dots), single-segment windows, degenerate hypotheses, and
both 2-D and 3-D data.

The references are the *undispatched* numpy implementations
(``_pair_components`` / ``_window_mdl_costs_numpy``), so the check can
run from inside backend registration without re-entering dispatch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _bits(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64).view(np.uint64)


def _mismatch(name: str, got: np.ndarray, want: np.ndarray) -> Optional[str]:
    if got.shape != want.shape:
        return f"{name}: shape {got.shape} != {want.shape}"
    bad = _bits(got) != _bits(want)
    if np.any(bad):
        k = int(np.flatnonzero(bad)[0])
        return (
            f"{name}: {int(bad.sum())}/{bad.size} values differ "
            f"(first at [{k}]: {got.flat[k]!r} != {want.flat[k]!r})"
        )
    return None


def _probe_segments(rng: np.random.Generator, d: int) -> np.ndarray:
    """(n, 2, d) start/end probe segments with adversarial cases."""
    n = 257
    pts = rng.standard_normal((n, 2, d))
    pts *= np.exp(rng.uniform(-6.0, 6.0, (n, 1, 1)))
    # Degenerate segments (end == start), incl. exact zero coordinates.
    pts[3, 1] = pts[3, 0]
    pts[17] = 0.0
    # Equal-length pairs for the id tie break: translated copies.
    pts[20] = pts[21] + 1.5
    pts[22] = pts[23] - 0.25
    # Anti-parallel neighbors (negative dots -> angle fallback).
    pts[30, 1] = pts[30, 0] - (pts[31, 1] - pts[31, 0])
    # Huge and tiny magnitudes.
    pts[40] *= 1e150
    pts[41] *= 1e-150
    pts[42, 1] = pts[42, 0] + 1e-160  # subnormal squared length
    return pts


def _check_pairs(backend, rng: np.random.Generator, d: int) -> Optional[str]:
    from repro.distance.vectorized import _pair_components

    pts = _probe_segments(rng, d)
    starts = np.ascontiguousarray(pts[:, 0])
    ends = np.ascontiguousarray(pts[:, 1])
    n = starts.shape[0]
    m = 1024
    left = rng.integers(0, n, m)
    right = rng.integers(0, n, m)
    # Self pairs, tie pairs both ways, degenerate-vs-degenerate.
    left[:4] = (5, 20, 21, 3)
    right[:4] = (5, 21, 20, 17)
    left = np.ascontiguousarray(left, dtype=np.int64)
    right = np.ascontiguousarray(right, dtype=np.int64)
    for directed in (True, False):
        want = _pair_components(
            starts[left], ends[left], left,
            starts[right], ends[right], right,
            directed=directed,
        )
        perp, par, ang = backend.pair_components(
            starts, ends, left, right, directed
        )
        for name, got, ref in (
            ("perp", perp, want.perpendicular),
            ("par", par, want.parallel),
            ("angle", ang, want.angle),
        ):
            bad = _mismatch(f"pair/{name}/d={d}/directed={directed}",
                            got, ref)
            if bad:
                return bad
    return None


def _probe_windows(rng: np.random.Generator, d: int):
    """A ragged multi-window probe (first/counts over a flat walk)."""
    n_pts = 400
    flat = np.cumsum(rng.standard_normal((n_pts, d)), axis=0)
    flat[100:110] = flat[99]  # stalled stretch: degenerate everything
    flat *= np.exp(rng.uniform(-3.0, 3.0))
    counts = np.ascontiguousarray(
        rng.integers(1, 24, 40), dtype=np.int64
    )
    counts[5] = 1  # single-segment window (ldh == 0 fix path)
    first = np.ascontiguousarray(
        rng.integers(0, n_pts - 1 - int(counts.max()), 40), dtype=np.int64
    )
    first[7] = 100  # hypothesis inside the stalled stretch: degenerate
    counts[7] = 8
    hyp_end_idx = first + counts
    return np.ascontiguousarray(flat), first, counts, hyp_end_idx


def _check_mdl(backend, rng: np.random.Generator, d: int) -> Optional[str]:
    from repro.partition.mdl import _window_mdl_costs_numpy, clamped_log2
    from repro.model.ragged import concatenate_ranges

    flat, first, counts, hyp_end_idx = _probe_windows(rng, d)
    offsets = np.cumsum(counts) - counts
    gather = concatenate_ranges(first, counts)
    window_of = np.repeat(
        np.arange(first.size, dtype=np.int64), counts
    )
    hyp_starts = np.ascontiguousarray(flat[first])
    hyp_ends = np.ascontiguousarray(flat[hyp_end_idx])
    sub_starts = np.ascontiguousarray(flat[gather])
    sub_ends = np.ascontiguousarray(flat[gather + 1])
    want = _window_mdl_costs_numpy(
        hyp_starts, hyp_ends, sub_starts, sub_ends, window_of, offsets
    )

    # Generic geometry entry point.
    hyp_len, perp_in, theta_in, sub_lens = backend.mdl_geometry(
        hyp_starts, hyp_ends, sub_starts, sub_ends,
        np.ascontiguousarray(window_of),
    )
    got = _finish(hyp_len, perp_in, theta_in, clamped_log2(sub_lens),
                  offsets, counts)
    for name, g, w in zip(("lh", "ldh", "nopar"), got, want):
        bad = _mismatch(f"mdl/{name}/d={d}", g, w)
        if bad:
            return bad

    # Lock-step (persistent layout) entry point: same windows through
    # the index-based form with precomputed segment invariants.
    seg_vecs = flat[1:] - flat[:-1]
    seg_lens = np.sqrt(np.sum(seg_vecs * seg_vecs, axis=1))
    enc_lens = clamped_log2(seg_lens)
    hyp_len, perp_in, theta_in, enc_gath = backend.lockstep_geometry(
        flat, seg_lens, enc_lens, first, counts, hyp_end_idx
    )
    got = _finish(hyp_len, perp_in, theta_in, enc_gath, offsets, counts)
    for name, g, w in zip(("lh", "ldh", "nopar"), got, want):
        bad = _mismatch(f"lockstep/{name}/d={d}", g, w)
        if bad:
            return bad
    return None


def _finish(hyp_len, perp_in, theta_in, enc_lens_gathered, offsets, counts):
    """The numpy tail every backend shares (mirrors window_mdl_costs)."""
    from repro.partition.mdl import clamped_log2

    lh = clamped_log2(hyp_len)
    ldh = np.add.reduceat(clamped_log2(perp_in), offsets) + np.add.reduceat(
        clamped_log2(theta_in), offsets
    )
    nopar = np.add.reduceat(enc_lens_gathered, offsets)
    ldh[counts == 1] = 0.0
    return lh, ldh, nopar


def parity_check(backend) -> Optional[str]:
    """Run the full bitwise gate; ``None`` on success, else a message
    describing the first divergence (surfaced by ``repro doctor``)."""
    rng = np.random.default_rng(20070612)  # SIGMOD'07 vintage
    for d in (2, 3):
        failure = _check_pairs(backend, rng, d)
        if failure:
            return failure
        failure = _check_mdl(backend, rng, d)
        if failure:
            return failure
    return None
