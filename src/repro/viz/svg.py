"""SVG rendering of trajectories and clustering results.

Mirrors the paper's figures: "Thin green lines display trajectories,
and thick red lines representative trajectories" (Figure 18 caption
commentary).  Pure-Python SVG generation — no plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.model.result import ClusteringResult
from repro.model.trajectory import Trajectory

#: Distinct per-cluster segment colours (cycled).
_CLUSTER_PALETTE = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
)


class _Canvas:
    """Maps data coordinates into an SVG viewport (y axis flipped)."""

    def __init__(
        self,
        points: np.ndarray,
        width: int,
        height: int,
        margin: float = 20.0,
    ):
        if points.shape[0] == 0:
            raise DatasetError("nothing to render")
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        extent = np.maximum(hi - lo, 1e-9)
        scale = min(
            (width - 2 * margin) / extent[0],
            (height - 2 * margin) / extent[1],
        )
        self.lo, self.scale, self.margin = lo, scale, margin
        self.width, self.height = width, height

    def map_point(self, point: np.ndarray) -> "tuple[float, float]":
        x = self.margin + (point[0] - self.lo[0]) * self.scale
        y = self.height - (self.margin + (point[1] - self.lo[1]) * self.scale)
        return float(x), float(y)

    def polyline(self, points: np.ndarray, stroke: str, width: float,
                 opacity: float = 1.0) -> str:
        if points.shape[0] < 2:
            return ""
        coords = " ".join(
            f"{x:.2f},{y:.2f}" for x, y in (self.map_point(p) for p in points)
        )
        return (
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:.2f}" stroke-opacity="{opacity:.2f}" '
            f'stroke-linejoin="round" stroke-linecap="round"/>'
        )

    def line(self, a: np.ndarray, b: np.ndarray, stroke: str,
             width: float, opacity: float = 1.0) -> str:
        x1, y1 = self.map_point(a)
        x2, y2 = self.map_point(b)
        return (
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width:.2f}" '
            f'stroke-opacity="{opacity:.2f}"/>'
        )


def _collect_points(trajectories: Sequence[Trajectory]) -> np.ndarray:
    if not trajectories:
        raise DatasetError("nothing to render")
    return np.vstack([t.points[:, :2] for t in trajectories])


def _svg_document(body: List[str], width: int, height: int) -> str:
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect width="{width}" height="{height}" fill="white"/>'
    )
    return header + "".join(body) + "</svg>"


def render_trajectories_svg(
    trajectories: Sequence[Trajectory],
    destination: Optional[Union[str, TextIO]] = None,
    width: int = 900,
    height: int = 650,
    stroke: str = "#2a9d2a",
) -> str:
    """Render raw trajectories (thin green polylines).  Returns the SVG
    string and optionally writes it to *destination*."""
    canvas = _Canvas(_collect_points(trajectories), width, height)
    body = [
        canvas.polyline(t.points[:, :2], stroke, 0.8, opacity=0.7)
        for t in trajectories
    ]
    document = _svg_document(body, width, height)
    _maybe_write(document, destination)
    return document


def render_result_svg(
    result: ClusteringResult,
    destination: Optional[Union[str, TextIO]] = None,
    width: int = 900,
    height: int = 650,
    show_cluster_segments: bool = True,
    show_noise: bool = False,
) -> str:
    """Render a clustering result in the paper's visual-inspection style.

    Layers, bottom to top: thin green input trajectories, per-cluster
    coloured member segments (optional), grey noise segments
    (optional), thick red representative trajectories.
    """
    canvas = _Canvas(_collect_points(result.trajectories), width, height)
    body: List[str] = []
    for trajectory in result.trajectories:
        body.append(
            canvas.polyline(trajectory.points[:, :2], "#2a9d2a", 0.7, 0.55)
        )
    if show_noise:
        for index in result.noise_indices():
            body.append(
                canvas.line(
                    result.segments.starts[index][:2],
                    result.segments.ends[index][:2],
                    "#bbbbbb", 0.6, 0.6,
                )
            )
    if show_cluster_segments:
        for cluster in result.clusters:
            colour = _CLUSTER_PALETTE[cluster.cluster_id % len(_CLUSTER_PALETTE)]
            for index in cluster.member_indices:
                body.append(
                    canvas.line(
                        result.segments.starts[index][:2],
                        result.segments.ends[index][:2],
                        colour, 1.2, 0.5,
                    )
                )
    for cluster in result.clusters:
        if cluster.representative is not None and len(cluster.representative) >= 2:
            body.append(
                canvas.polyline(cluster.representative[:, :2], "#d01010", 3.5)
            )
    document = _svg_document(body, width, height)
    _maybe_write(document, destination)
    return document


def _maybe_write(document: str, destination: Optional[Union[str, TextIO]]) -> None:
    if destination is None:
        return
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(document)
        return
    destination.write(document)
