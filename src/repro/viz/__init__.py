"""Visual inspection tool (Section 5.1).

The authors validated clusters with a custom C++ visual tool; we
render the same picture — thin green input trajectories, thick red
representative trajectories, per-cluster segment colouring — to SVG
(:mod:`repro.viz.svg`) and, for terminals, to ASCII
(:mod:`repro.viz.ascii`).
"""

from repro.viz.svg import render_result_svg, render_trajectories_svg
from repro.viz.ascii import render_result_ascii

__all__ = [
    "render_result_svg",
    "render_trajectories_svg",
    "render_result_ascii",
]
