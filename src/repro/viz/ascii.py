"""ASCII rendering — a terminal-friendly glance at a clustering result.

Trajectories rasterise as ``.``, cluster members as digit/letter codes
(one symbol per cluster), representative trajectories as ``#``.  Meant
for smoke-checking results in logs, not for publication figures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.model.result import ClusteringResult
from repro.model.trajectory import Trajectory

_CLUSTER_SYMBOLS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _raster_line(
    grid: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    symbol: str,
    lo: np.ndarray,
    scale: np.ndarray,
) -> None:
    """Bresenham-ish rasterisation by dense sampling."""
    rows, cols = grid.shape
    length = max(float(np.linalg.norm(b - a)), 1e-9)
    n_samples = max(2, int(length * max(scale) * 2))
    for t in np.linspace(0.0, 1.0, n_samples):
        point = a + t * (b - a)
        col = int((point[0] - lo[0]) * scale[0])
        row = int((point[1] - lo[1]) * scale[1])
        row = rows - 1 - min(max(row, 0), rows - 1)
        col = min(max(col, 0), cols - 1)
        grid[row, col] = symbol


def render_result_ascii(
    result: ClusteringResult,
    width: int = 100,
    height: int = 36,
    show_trajectories: bool = True,
) -> str:
    """Render a result as an ASCII panel (see module docstring)."""
    return _render(
        result.trajectories,
        result,
        width,
        height,
        show_trajectories,
    )


def render_trajectories_ascii(
    trajectories: Sequence[Trajectory],
    width: int = 100,
    height: int = 36,
) -> str:
    """Render raw trajectories only."""
    return _render(trajectories, None, width, height, True)


def _render(trajectories, result, width, height, show_trajectories) -> str:
    trajectories = list(trajectories)
    if not trajectories:
        raise DatasetError("nothing to render")
    if width < 4 or height < 4:
        raise DatasetError("canvas too small")
    all_points = np.vstack([t.points[:, :2] for t in trajectories])
    lo = all_points.min(axis=0)
    hi = all_points.max(axis=0)
    extent = np.maximum(hi - lo, 1e-9)
    scale = np.array([(width - 1) / extent[0], (height - 1) / extent[1]])
    grid = np.full((height, width), " ", dtype="<U1")

    if show_trajectories:
        for trajectory in trajectories:
            for a, b in zip(trajectory.points[:-1], trajectory.points[1:]):
                _raster_line(grid, a[:2], b[:2], ".", lo, scale)
    if result is not None:
        for cluster in result.clusters:
            symbol = _CLUSTER_SYMBOLS[cluster.cluster_id % len(_CLUSTER_SYMBOLS)]
            for index in cluster.member_indices:
                _raster_line(
                    grid,
                    result.segments.starts[index][:2],
                    result.segments.ends[index][:2],
                    symbol, lo, scale,
                )
        for cluster in result.clusters:
            rep = cluster.representative
            if rep is not None and len(rep) >= 2:
                for a, b in zip(rep[:-1], rep[1:]):
                    _raster_line(grid, a[:2], b[:2], "#", lo, scale)
    return "\n".join("".join(row) for row in grid)
