"""One-call experiment harnesses mirroring the paper's evaluation.

All three harnesses accept either raw trajectories (they will run the
partitioning phase) or an already-partitioned
:class:`~repro.model.segmentset.SegmentSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.dbscan import cluster_segments
from repro.core.config import TraclusConfig
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ParameterSearchError
from repro.model.cluster import clusters_from_labels
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.partition.approximate import partition_all
from repro.quality.qmeasure import quality_measure

TrajectoriesOrSegments = Union[Sequence[Trajectory], SegmentSet]


def _segment_workspace(
    segments: SegmentSet, distance: Optional[SegmentDistance]
):
    """A segment-bound Workspace carrying *distance*'s weights — the
    experiment harnesses ride the shared artifact graph (one ε_max
    build per grid) instead of per-cell engine calls."""
    from repro.api.workspace import Workspace

    distance = distance if distance is not None else SegmentDistance()
    config = TraclusConfig(
        w_perp=distance.w_perp,
        w_par=distance.w_par,
        w_theta=distance.w_theta,
        directed=distance.directed,
        compute_representatives=False,
    )
    return Workspace.from_segments(segments, config)


def _as_segments(
    data: TrajectoriesOrSegments, suppression: float
) -> SegmentSet:
    if isinstance(data, SegmentSet):
        return data
    segments, _ = partition_all(list(data), suppression=suppression)
    return segments


# ---------------------------------------------------------------------------
# Entropy curve (Figures 16 / 19)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EntropyCurveResult:
    """The Figure-16/19 curve plus its minimum and the derived MinLns
    recommendation."""

    eps_values: Tuple[float, ...]
    entropies: Tuple[float, ...]
    avg_neighborhood_sizes: Tuple[float, ...]
    best_index: int

    @property
    def best_eps(self) -> float:
        return self.eps_values[self.best_index]

    @property
    def best_entropy(self) -> float:
        return self.entropies[self.best_index]

    @property
    def best_avg_neighborhood(self) -> float:
        return self.avg_neighborhood_sizes[self.best_index]

    @property
    def recommended_min_lns(self) -> Tuple[float, float]:
        """The Section 4.4 band: avg + 1 .. avg + 3."""
        avg = self.best_avg_neighborhood
        return (avg + 1.0, avg + 3.0)

    def is_interior_minimum(self) -> bool:
        """True when the minimum is strictly inside the sweep — the
        sanity check the Figure-16/19 shape relies on."""
        return 0 < self.best_index < len(self.eps_values) - 1


def entropy_curve_experiment(
    data: TrajectoriesOrSegments,
    eps_values: Sequence[float],
    distance: Optional[SegmentDistance] = None,
    suppression: float = 0.0,
) -> EntropyCurveResult:
    """Compute the full entropy-vs-ε curve (Formula 10) in one pass
    (served from a shared Workspace graph — bitwise equal to the
    deprecated direct :func:`repro.params.entropy.entropy_curve`
    rebuild)."""
    segments = _as_segments(data, suppression)
    if len(segments) == 0:
        raise ParameterSearchError("no segments to analyse")
    entropies, avg_sizes = _segment_workspace(
        segments, distance
    ).entropy_curve(eps_values)
    return EntropyCurveResult(
        eps_values=tuple(float(e) for e in eps_values),
        entropies=tuple(float(h) for h in entropies),
        avg_neighborhood_sizes=tuple(float(a) for a in avg_sizes),
        best_index=int(np.argmin(entropies)),
    )


# ---------------------------------------------------------------------------
# QMeasure grid (Figures 17 / 20)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QMeasureGridResult:
    """QMeasure over an (ε, MinLns) grid (smaller is better)."""

    eps_values: Tuple[float, ...]
    min_lns_values: Tuple[float, ...]
    qmeasures: Dict[Tuple[float, float], float] = field(repr=False)

    def value(self, eps: float, min_lns: float) -> float:
        return self.qmeasures[(eps, min_lns)]

    def best(self) -> Tuple[float, float, float]:
        """``(eps, min_lns, qmeasure)`` of the grid minimum."""
        key = min(self.qmeasures, key=self.qmeasures.get)
        return key[0], key[1], self.qmeasures[key]

    def row(self, min_lns: float) -> List[float]:
        """QMeasure across ε at one MinLns (a Figure-17 series)."""
        return [self.qmeasures[(e, min_lns)] for e in self.eps_values]


def qmeasure_grid(
    data: TrajectoriesOrSegments,
    eps_values: Sequence[float],
    min_lns_values: Sequence[float],
    distance: Optional[SegmentDistance] = None,
    suppression: float = 0.0,
) -> QMeasureGridResult:
    """Evaluate Formula (11) over the full parameter grid.

    The whole grid rides one Workspace labels artifact (a single
    ε_max-graph build, incremental-ε labeling per cell — labels bitwise
    identical to per-cell :func:`cluster_segments` refits)."""
    segments = _as_segments(data, suppression)
    distance = distance if distance is not None else SegmentDistance()
    workspace = _segment_workspace(segments, distance)
    grid_labels = workspace.labels_grid(eps_values, min_lns_values)
    grid: Dict[Tuple[float, float], float] = {}
    for j, min_lns in enumerate(min_lns_values):
        for i, eps in enumerate(eps_values):
            labels = grid_labels[i, j].copy()
            grid[(float(eps), float(min_lns))] = quality_measure(
                clusters_from_labels(labels, segments), segments, labels,
                distance,
            ).qmeasure
    return QMeasureGridResult(
        eps_values=tuple(float(e) for e in eps_values),
        min_lns_values=tuple(float(m) for m in min_lns_values),
        qmeasures=grid,
    )


# ---------------------------------------------------------------------------
# Parameter sweep (Section 5.4)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParameterSweepRow:
    """Outcome of one (ε, MinLns) setting."""

    eps: float
    min_lns: float
    n_clusters: int
    mean_cluster_size: float
    noise_ratio: float
    total_clustered: int


def parameter_sweep(
    data: TrajectoriesOrSegments,
    settings: Sequence[Tuple[float, float]],
    distance: Optional[SegmentDistance] = None,
    suppression: float = 0.0,
    cardinality_threshold: Optional[float] = None,
) -> List[ParameterSweepRow]:
    """Run the grouping phase for each ``(eps, min_lns)`` pair and
    report the Section 5.4 quantities."""
    segments = _as_segments(data, suppression)
    rows: List[ParameterSweepRow] = []
    for eps, min_lns in settings:
        clusters, labels = cluster_segments(
            segments, eps=float(eps), min_lns=float(min_lns),
            distance=distance, cardinality_threshold=cardinality_threshold,
        )
        sizes = [len(c) for c in clusters]
        rows.append(
            ParameterSweepRow(
                eps=float(eps),
                min_lns=float(min_lns),
                n_clusters=len(clusters),
                mean_cluster_size=float(np.mean(sizes)) if sizes else 0.0,
                noise_ratio=float(np.mean(labels == -1)) if labels.size else 0.0,
                total_clustered=int(np.sum(sizes)),
            )
        )
    return rows
