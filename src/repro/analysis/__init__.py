"""Reusable experiment harnesses.

The paper's evaluation workflow — sweep ε for the entropy curve, scan a
(ε, MinLns) grid with QMeasure, compare parameter settings — applies to
any trajectory dataset, not just the paper's.  This subpackage packages
those workflows behind one-call functions so downstream users can run
the Section 4.4/5.x analysis on their own data; the `benchmarks/`
harness prints the paper-vs-measured tables on top of the same logic.
"""

from repro.analysis.experiments import (
    EntropyCurveResult,
    ParameterSweepRow,
    QMeasureGridResult,
    qmeasure_grid,
    entropy_curve_experiment,
    parameter_sweep,
)

__all__ = [
    "EntropyCurveResult",
    "ParameterSweepRow",
    "QMeasureGridResult",
    "qmeasure_grid",
    "entropy_curve_experiment",
    "parameter_sweep",
]
