"""Parameter-value selection heuristics (Section 4.4).

ε is chosen by minimising the entropy of the neighborhood-size
distribution (Formula 10) — uniform ``|N_eps|`` (everything is a
neighbor, or nothing is) maximises entropy, while a good clustering
skews it.  The optimum may be located by exhaustive grid search or by
the paper's simulated annealing.  MinLns is then the average
``|N_eps|`` at the chosen ε plus 1-3.
"""

from repro.params.entropy import (
    neighborhood_entropy,
    neighborhood_size_curve,
    entropy_curve,
)
from repro.params.annealing import SimulatedAnnealer, anneal_epsilon
from repro.params.heuristic import ParameterEstimate, recommend_parameters

__all__ = [
    "neighborhood_entropy",
    "neighborhood_size_curve",
    "entropy_curve",
    "SimulatedAnnealer",
    "anneal_epsilon",
    "ParameterEstimate",
    "recommend_parameters",
]
