"""The end-to-end parameter recommendation of Section 4.4.

1. Find the ε minimising neighborhood entropy (grid search by default,
   simulated annealing optionally).
2. Read off ``avg|N_eps(L)|`` at that ε.
3. Recommend ``MinLns in [avg + 1, avg + 3]`` ("this is natural since
   MinLns should be greater than avg|N_eps(L)| to discover meaningful
   clusters").

The estimate "provides a reasonable range where the optimal value is
likely to reside"; the paper's own optima sat within ±2 of the
estimate on both real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.distance.weighted import SegmentDistance
from repro.exceptions import ParameterSearchError
from repro.model.segmentset import SegmentSet
from repro.params.annealing import anneal_epsilon
from repro.params.entropy import entropy_curve, neighborhood_size_curve


@dataclass(frozen=True)
class ParameterEstimate:
    """Outcome of the Section 4.4 heuristic."""

    eps: float
    entropy: float
    avg_neighborhood_size: float
    min_lns_low: float
    min_lns_high: float
    eps_values: Tuple[float, ...] = field(default=(), repr=False)
    entropies: Tuple[float, ...] = field(default=(), repr=False)

    @property
    def min_lns(self) -> float:
        """Middle of the recommended MinLns range (avg + 2)."""
        return (self.min_lns_low + self.min_lns_high) / 2.0


def default_eps_grid(segments: SegmentSet) -> np.ndarray:
    """Integer ε grid 1..~2x the mean segment length (the paper sweeps
    1..60 on data whose partitions average a few tens of units).  The
    Workspace facade uses the same grid, so its cached counts serve the
    default heuristic too."""
    mean_length = segments.mean_length()
    hi = max(int(np.ceil(2.0 * mean_length)), 10)
    return np.arange(1.0, hi + 1.0)


#: Backwards-compatible private alias (pre-Workspace name).
_default_eps_grid = default_eps_grid


def recommend_parameters(
    segments: SegmentSet,
    eps_values: Optional[Sequence[float]] = None,
    distance: Optional[SegmentDistance] = None,
    method: str = "grid",
    rng: Optional[np.random.Generator] = None,
    neighborhood_method: str = "auto",
    counts: Optional[np.ndarray] = None,
) -> ParameterEstimate:
    """Run the Section 4.4 heuristic on a partitioned segment set.

    Parameters
    ----------
    segments:
        The trajectory partitions (output of the partitioning phase).
    eps_values:
        Candidate ε grid; defaults to integers from 1 to about twice
        the mean segment length.
    method:
        ``"grid"`` — exhaustive search over *eps_values* (deterministic;
        also returns the full entropy curve for plotting Figures 16/19);
        ``"anneal"`` — the paper's simulated annealing over the same
        bracket.
    neighborhood_method:
        How ``|N_eps|`` is counted: ``"auto"``/``"batch"`` stream the
        batched candidate-pair join of
        :mod:`repro.cluster.neighbor_graph`; ``"brute"`` loops one
        distance row per segment.  Identical counts either way.
    counts:
        Precomputed ``(n_eps, n_segments)`` neighborhood counts aligned
        with *eps_values* (grid method only) — a
        :class:`~repro.sweep.engine.SweepEngine` serves these from its
        shared ε_max graph, so a parameter sweep never counts twice.
    """
    if len(segments) == 0:
        raise ParameterSearchError("cannot recommend parameters for zero segments")
    if distance is None:
        distance = SegmentDistance()
    grid = (
        np.asarray(eps_values, dtype=np.float64)
        if eps_values is not None
        else default_eps_grid(segments)
    )
    if grid.size == 0:
        raise ParameterSearchError("eps_values must be non-empty")
    if counts is not None and method != "grid":
        raise ParameterSearchError(
            "precomputed counts only apply to the grid method"
        )

    if method == "grid":
        if counts is None:
            # Count here (the raw streaming engine) rather than let
            # entropy_curve's deprecated no-counts path re-derive them:
            # identical ints, no DeprecationWarning for callers that
            # legitimately bypass the Workspace.
            counts = neighborhood_size_curve(
                segments, grid, distance, method=neighborhood_method
            )
        entropies, avg_sizes = entropy_curve(
            segments, grid, distance, method=neighborhood_method,
            counts=counts,
        )
        best = int(np.argmin(entropies))
        eps = float(grid[best])
        entropy = float(entropies[best])
        avg_size = float(avg_sizes[best])
        curve_eps: Tuple[float, ...] = tuple(float(e) for e in grid)
        curve_entropy: Tuple[float, ...] = tuple(float(h) for h in entropies)
    elif method == "anneal":
        quantum = float(grid[1] - grid[0]) if grid.size > 1 else 1.0
        eps, entropy, avg_size = anneal_epsilon(
            segments,
            (float(grid.min()), float(grid.max())),
            distance=distance,
            quantum=max(quantum, 1e-9),
            rng=rng,
            neighborhood_method=neighborhood_method,
        )
        curve_eps, curve_entropy = (), ()
    else:
        raise ParameterSearchError(
            f"unknown method {method!r}; expected 'grid' or 'anneal'"
        )

    return ParameterEstimate(
        eps=eps,
        entropy=entropy,
        avg_neighborhood_size=avg_size,
        min_lns_low=avg_size + 1.0,
        min_lns_high=avg_size + 3.0,
        eps_values=curve_eps,
        entropies=curve_entropy,
    )
