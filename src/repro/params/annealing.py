"""Simulated annealing for ε selection (Section 4.4, reference [14]).

The paper: "This optimal ε can be efficiently obtained by a simulated
annealing technique."  The annealer below is a small generic SA engine
(geometric cooling, Gaussian proposals, Metropolis acceptance) applied
to the entropy objective.  Objective evaluations are memoised on a
quantised ε grid because each one costs a full O(n^2) neighborhood
pass.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.cluster.neighbor_graph import neighborhood_size_counts
from repro.cluster.neighborhood import NEIGHBORHOOD_METHODS
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ParameterSearchError
from repro.model.segmentset import SegmentSet
from repro.params.entropy import neighborhood_entropy


class SimulatedAnnealer:
    """Minimise a 1-D objective over a closed interval.

    Parameters
    ----------
    objective:
        Callable ``f(x) -> float`` to minimise.
    bounds:
        ``(lo, hi)`` search interval.
    initial_temperature, cooling, steps:
        Metropolis temperature schedule: ``T_k = T0 * cooling**k`` over
        *steps* iterations.
    step_scale:
        Proposal standard deviation as a fraction of the interval width.
    rng:
        NumPy random generator (seeded for reproducibility by default).
    """

    def __init__(
        self,
        objective: Callable[[float], float],
        bounds: Tuple[float, float],
        initial_temperature: float = 1.0,
        cooling: float = 0.95,
        steps: int = 120,
        step_scale: float = 0.15,
        rng: Optional[np.random.Generator] = None,
    ):
        lo, hi = float(bounds[0]), float(bounds[1])
        if not lo < hi:
            raise ParameterSearchError(f"invalid bounds: ({lo}, {hi})")
        if not 0 < cooling < 1:
            raise ParameterSearchError(f"cooling must be in (0, 1), got {cooling}")
        if steps < 1:
            raise ParameterSearchError(f"steps must be >= 1, got {steps}")
        self.objective = objective
        self.lo, self.hi = lo, hi
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self.steps = int(steps)
        self.step_scale = float(step_scale)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(self, x0: Optional[float] = None) -> Tuple[float, float]:
        """Anneal; returns ``(best_x, best_value)``."""
        width = self.hi - self.lo
        x = float(x0) if x0 is not None else (self.lo + self.hi) / 2.0
        x = min(max(x, self.lo), self.hi)
        value = self.objective(x)
        best_x, best_value = x, value
        temperature = self.initial_temperature
        for _ in range(self.steps):
            proposal = x + self.rng.normal(0.0, self.step_scale * width)
            proposal = min(max(proposal, self.lo), self.hi)
            proposal_value = self.objective(proposal)
            delta = proposal_value - value
            if delta <= 0 or self.rng.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                x, value = proposal, proposal_value
                if value < best_value:
                    best_x, best_value = x, value
            temperature *= self.cooling
        return best_x, best_value


def anneal_epsilon(
    segments: SegmentSet,
    eps_bounds: Tuple[float, float],
    distance: Optional[SegmentDistance] = None,
    quantum: float = 1.0,
    steps: int = 120,
    rng: Optional[np.random.Generator] = None,
    neighborhood_method: str = "auto",
) -> Tuple[float, float, float]:
    """Find the entropy-minimising ε by simulated annealing.

    ε proposals are quantised to *quantum* (the paper sweeps integer ε)
    and each quantised value's entropy is computed at most once.  Under
    ``neighborhood_method="auto"``/``"batch"`` each evaluation is one
    blocked candidate-pair pass
    (:func:`repro.cluster.neighbor_graph.neighborhood_size_counts`);
    ``"brute"`` keeps the per-segment row loop.

    Returns ``(eps, entropy, avg_neighborhood_size)`` at the optimum.
    """
    if distance is None:
        distance = SegmentDistance()
    if len(segments) == 0:
        raise ParameterSearchError("cannot select parameters for zero segments")
    if quantum <= 0:
        raise ParameterSearchError(f"quantum must be positive, got {quantum}")
    if neighborhood_method not in NEIGHBORHOOD_METHODS:
        raise ParameterSearchError(
            f"unknown neighborhood method {neighborhood_method!r}; "
            f"expected one of {NEIGHBORHOOD_METHODS}"
        )

    cache: Dict[float, Tuple[float, float]] = {}

    def evaluate(eps: float) -> float:
        q = round(eps / quantum) * quantum
        if q not in cache:
            if neighborhood_method != "brute":
                sizes = neighborhood_size_counts(segments, [q], distance)[0]
            else:
                sizes = np.zeros(len(segments), dtype=np.int64)
                for i in range(len(segments)):
                    row = distance.member_to_all(i, segments)
                    sizes[i] = int(np.sum(row <= q))
            cache[q] = (neighborhood_entropy(sizes), float(sizes.mean()))
        return cache[q][0]

    annealer = SimulatedAnnealer(
        evaluate, eps_bounds, steps=steps, rng=rng
    )
    best_eps, best_entropy = annealer.run()
    best_q = round(best_eps / quantum) * quantum
    entropy, avg_size = cache[best_q]
    return best_q, entropy, avg_size
