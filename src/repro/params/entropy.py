"""Neighborhood-size entropy (Formula 10).

``H(X) = - sum_i p(x_i) log2 p(x_i)`` with
``p(x_i) = |N_eps(x_i)| / sum_j |N_eps(x_j)|``.

For too small an ε every ``|N_eps|`` is 1; for too large an ε every
``|N_eps|`` is n — both are uniform distributions with maximal entropy
``log2 n``.  A good ε produces a skewed distribution and a lower
entropy; Figures 16 and 19 of the paper plot exactly this curve.

:func:`neighborhood_size_curve` computes ``|N_eps|`` for *many* ε
values in a single pass over the pairwise distances, which is what
makes the figure-16/19 sweeps affordable.  By default (``"auto"``) that
pass is the blocked candidate-pair stream of
:mod:`repro.cluster.neighbor_graph` — each surviving pair is evaluated
once and binned against all thresholds at ~O(log k) cost; ``"brute"``
keeps the legacy per-segment row loop.  Both produce identical counts
(shared distance kernel).
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Union

import numpy as np

from repro.cluster.neighbor_graph import neighborhood_size_counts
from repro.cluster.neighborhood import NEIGHBORHOOD_METHODS
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ParameterSearchError
from repro.model.segmentset import SegmentSet


def neighborhood_entropy(sizes: np.ndarray) -> float:
    """Entropy of a neighborhood-size vector (Formula 10), in bits."""
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ParameterSearchError(
            f"need a non-empty 1-D size vector, got shape {sizes.shape}"
        )
    if np.any(sizes < 0):
        raise ParameterSearchError("neighborhood sizes must be non-negative")
    total = float(sizes.sum())
    if total == 0.0:
        # Degenerate: nothing has any neighbor mass; define H = 0.
        return 0.0
    p = sizes / total
    nonzero = p[p > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


def neighborhood_size_curve(
    segments: SegmentSet,
    eps_values: Union[Sequence[float], np.ndarray],
    distance: Optional[SegmentDistance] = None,
    method: str = "auto",
) -> np.ndarray:
    """``|N_eps(L_i)|`` for every ε in *eps_values* and every segment.

    Returns an ``(n_eps, n_segments)`` int64 array.  ``method="auto"``
    (or ``"batch"``) streams candidate pairs through the blocked join of
    :func:`repro.cluster.neighbor_graph.neighborhood_size_counts` —
    each unordered pair is evaluated once and binned against every
    threshold; ``"brute"`` computes one distance row per segment and
    compares it against all thresholds (one O(n^2) pass either way, but
    the batched route halves the kernel work and drops the n Python
    round-trips).
    """
    if distance is None:
        distance = SegmentDistance()
    eps_array = np.asarray(eps_values, dtype=np.float64)
    if eps_array.ndim != 1 or eps_array.size == 0:
        raise ParameterSearchError("eps_values must be a non-empty 1-D sequence")
    if np.any(eps_array < 0):
        raise ParameterSearchError("eps values must be non-negative")
    if method not in NEIGHBORHOOD_METHODS:
        raise ParameterSearchError(
            f"unknown neighborhood method {method!r}; "
            f"expected one of {NEIGHBORHOOD_METHODS}"
        )
    n = len(segments)
    # Multi-threshold counting only has two real routes: the blocked
    # pair stream and the per-row loop.  The per-query index engines
    # ("grid"/"rtree") map to the stream, which uses the same prefilter.
    if method != "brute" and n > 0:
        return neighborhood_size_counts(segments, eps_array, distance)
    counts = np.zeros((eps_array.size, n), dtype=np.int64)
    for i in range(n):
        row = distance.member_to_all(i, segments)
        # (n_eps, n) broadcast: how many entries of this row fall under
        # each threshold.
        counts[:, i] = np.sum(row[None, :] <= eps_array[:, None], axis=1)
    return counts


def entropy_from_counts(
    counts: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """``(entropies, avg_sizes)`` from a precomputed ``(n_eps, n)``
    neighborhood-count matrix (Formula 10 applied row-wise).

    The counts are integers, so *any* exact counting route — the
    blocked pair stream, per-segment brute rows, or the sweep engine's
    stored-distance binning (:meth:`repro.sweep.engine.SweepEngine
    .neighborhood_counts`) — feeds this identically, and the float
    arithmetic downstream is bitwise shared.
    """
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ParameterSearchError(
            f"need an (n_eps, n_segments) count matrix, got shape "
            f"{counts.shape}"
        )
    entropies = np.array(
        [neighborhood_entropy(counts[k]) for k in range(counts.shape[0])]
    )
    avg_sizes = counts.mean(axis=1)
    return entropies, avg_sizes


def entropy_curve(
    segments: SegmentSet,
    eps_values: Union[Sequence[float], np.ndarray],
    distance: Optional[SegmentDistance] = None,
    method: str = "auto",
    counts: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Entropy and mean neighborhood size for each candidate ε.

    Returns ``(entropies, avg_sizes)``, both shaped ``(n_eps,)`` — the
    data behind Figures 16 and 19.  ``avg_sizes[k]`` is
    ``avg|N_eps(L)|`` at ``eps_values[k]``, the quantity MinLns is
    derived from (Section 4.4: "This operation induces no additional
    cost since it can be done while computing H(X)").  ``method`` is
    forwarded to :func:`neighborhood_size_curve`; a precomputed
    ``counts`` matrix (aligned with *eps_values*, e.g. from a
    :class:`~repro.api.Workspace` or
    :class:`~repro.sweep.engine.SweepEngine` whose graph already holds
    every distance) skips the counting pass entirely.

    .. deprecated:: 1.2
        Calling without ``counts=`` emits a :class:`DeprecationWarning`
        naming the replacement call.  The compatibility path no longer
        recomputes on its own: it routes through a memory-only
        :class:`~repro.api.Workspace`, so the counting pass shares the
        workspace engine (and its kernel backends) — the curve stays
        identical, float for float.  Only a custom
        :class:`~repro.distance.weighted.SegmentDistance` subclass or
        an explicit ``method="brute"`` still takes the direct pass.
    """
    if counts is None:
        warnings.warn(
            "entropy_curve(segments, eps_values) without counts= is "
            "deprecated; call Workspace.from_segments(segments, "
            "config).entropy_curve(eps_values) (repro.api.Workspace) "
            "instead — it is the exact replacement for this call and "
            "builds the shared ε-graph once — or pass counts= from "
            "Workspace.entropy_counts(eps_values)",
            DeprecationWarning,
            stacklevel=2,
        )
        eps_array = np.asarray(eps_values, dtype=np.float64)
        if eps_array.ndim != 1 or eps_array.size == 0:
            raise ParameterSearchError(
                "eps_values must be a non-empty 1-D sequence"
            )
        if np.any(eps_array < 0):
            raise ParameterSearchError("eps values must be non-negative")
        if method not in NEIGHBORHOOD_METHODS:
            raise ParameterSearchError(
                f"unknown neighborhood method {method!r}; "
                f"expected one of {NEIGHBORHOOD_METHODS}"
            )
        plain_distance = distance is None or type(distance) is SegmentDistance
        if method != "brute" and plain_distance and len(segments) > 0:
            # Late imports: repro.api.workspace imports this module.
            from repro.api.workspace import Workspace
            from repro.core.config import TraclusConfig

            d = distance if distance is not None else SegmentDistance()
            workspace = Workspace.from_segments(
                segments,
                TraclusConfig(
                    w_perp=d.w_perp, w_par=d.w_par, w_theta=d.w_theta,
                    directed=d.directed,
                ),
            )
            counts = workspace.entropy_counts(eps_array)
        else:
            # Custom distance subclass, explicit brute force, or an
            # empty segment set: the direct pass (same integer counts).
            counts = neighborhood_size_curve(
                segments, eps_values, distance, method
            )
    elif counts.shape[0] != len(eps_values):
        raise ParameterSearchError(
            f"counts has {counts.shape[0]} rows but eps_values has "
            f"{len(eps_values)} entries"
        )
    return entropy_from_counts(counts)
