"""TRACLUS — Trajectory Clustering with a Partition-and-Group Framework.

A from-scratch reproduction of Lee, Han & Whang (SIGMOD 2007).  The
package partitions trajectories into line segments at MDL-optimal
characteristic points, groups the segments with a density-based
(DBSCAN-style) algorithm under a purpose-built line-segment distance,
and summarises every cluster with a representative trajectory — thereby
discovering *common sub-trajectories* that whole-trajectory clustering
misses.

Quickstart
----------
>>> import numpy as np
>>> from repro import Trajectory, traclus
>>> rng = np.random.default_rng(7)
>>> trajectories = [
...     Trajectory(
...         np.column_stack([np.linspace(0, 100, 20),
...                          5 * i + rng.normal(0, 0.5, 20)]),
...         traj_id=i,
...     )
...     for i in range(6)
... ]
>>> result = traclus(trajectories, eps=12.0, min_lns=4)
>>> len(result) >= 1
True
"""

from repro.core.config import StreamConfig, SweepConfig, TraclusConfig
from repro.core.traclus import TRACLUS, traclus
from repro.api.workspace import PartitionArtifact, Workspace
from repro.cluster.dbscan import LineSegmentDBSCAN, cluster_segments
from repro.cluster.optics import LineSegmentOPTICS
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ReproError
from repro.model.cluster import Cluster, NOISE, UNCLASSIFIED
from repro.model.result import ClusteringResult
from repro.model.ragged import RaggedPoints
from repro.model.segment import Segment
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.params.heuristic import ParameterEstimate, recommend_parameters
from repro.partition.approximate import (
    PARTITION_METHODS,
    partition_all,
    partition_trajectory,
)
from repro.partition.batched import batched_partition_all
from repro.partition.exact import exact_partition
from repro.quality.qmeasure import quality_measure
from repro.representative.sweep import (
    RepresentativeConfig,
    generate_representative,
)
from repro.stream import StreamingTRACLUS
from repro.sweep import SweepEngine, SweepResult, run_sweep

__version__ = "1.1.0"

__all__ = [
    "TRACLUS",
    "traclus",
    "Workspace",
    "PartitionArtifact",
    "TraclusConfig",
    "StreamConfig",
    "SweepConfig",
    "StreamingTRACLUS",
    "SweepEngine",
    "SweepResult",
    "run_sweep",
    "LineSegmentDBSCAN",
    "cluster_segments",
    "LineSegmentOPTICS",
    "SegmentDistance",
    "ReproError",
    "Cluster",
    "ClusteringResult",
    "NOISE",
    "UNCLASSIFIED",
    "RaggedPoints",
    "Segment",
    "SegmentSet",
    "Trajectory",
    "ParameterEstimate",
    "recommend_parameters",
    "PARTITION_METHODS",
    "partition_all",
    "partition_trajectory",
    "batched_partition_all",
    "exact_partition",
    "quality_measure",
    "RepresentativeConfig",
    "generate_representative",
    "__version__",
]
