"""Whole-trajectory density-based clustering.

The "traditional" alternative the introduction argues against: treat
each *whole* trajectory as one object under a sequence distance (LCSS /
EDR / DTW), then run point-DBSCAN over the resulting distance matrix.
Used as a baseline to show that trajectories sharing only a common
sub-trajectory do not cluster under whole-trajectory distances.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.baselines.measures import dtw_distance, edr_distance, lcss_distance
from repro.exceptions import ClusteringError
from repro.model.trajectory import Trajectory

#: Named distance factories: name -> callable(a, b) -> float.
_MEASURES = {
    "dtw": lambda eps_match: (lambda a, b: dtw_distance(a, b)),
    "edr": lambda eps_match: (lambda a, b: edr_distance(a, b, eps_match)),
    "lcss": lambda eps_match: (lambda a, b: lcss_distance(a, b, eps_match)),
}


def trajectory_distance_matrix(
    trajectories: Sequence[Trajectory],
    measure: str = "dtw",
    matching_eps: float = 5.0,
) -> np.ndarray:
    """Symmetric whole-trajectory distance matrix under the named
    measure (``"dtw"``, ``"edr"``, or ``"lcss"``)."""
    if measure not in _MEASURES:
        raise ClusteringError(
            f"unknown measure {measure!r}; expected one of {sorted(_MEASURES)}"
        )
    distance = _MEASURES[measure](matching_eps)
    n = len(trajectories)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = distance(
                trajectories[i], trajectories[j]
            )
    return matrix


class WholeTrajectoryDBSCAN:
    """DBSCAN over whole trajectories.

    Parameters
    ----------
    eps, min_pts:
        Standard DBSCAN parameters in the units of the chosen measure.
    measure:
        ``"dtw"`` (unnormalised path cost), ``"edr"`` or ``"lcss"``
        (both normalised to [0, 1]).
    matching_eps:
        Point-match tolerance for EDR/LCSS.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        measure: str = "dtw",
        matching_eps: float = 5.0,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if min_pts < 1:
            raise ClusteringError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.measure = measure
        self.matching_eps = float(matching_eps)

    def fit(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        """Labels per trajectory: >= 0 cluster id, -1 noise."""
        trajectories = list(trajectories)
        matrix = trajectory_distance_matrix(
            trajectories, self.measure, self.matching_eps
        )
        return self.fit_matrix(matrix)

    def fit_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """DBSCAN over a precomputed distance matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        n = matrix.shape[0]
        if matrix.shape != (n, n):
            raise ClusteringError(f"need a square matrix, got {matrix.shape}")
        unvisited = -2
        labels = np.full(n, unvisited, dtype=np.int64)
        cluster_id = 0
        for i in range(n):
            if labels[i] != unvisited:
                continue
            neighbors = np.nonzero(matrix[i] <= self.eps)[0]
            if neighbors.size < self.min_pts:
                labels[i] = -1
                continue
            labels[i] = cluster_id
            queue = deque(int(x) for x in neighbors if x != i)
            while queue:
                j = queue.popleft()
                if labels[j] == -1:
                    labels[j] = cluster_id
                if labels[j] != unvisited:
                    continue
                labels[j] = cluster_id
                j_neighbors = np.nonzero(matrix[j] <= self.eps)[0]
                if j_neighbors.size >= self.min_pts:
                    queue.extend(
                        int(x) for x in j_neighbors if labels[x] == unvisited
                    )
            cluster_id += 1
        return labels
