"""Whole-trajectory baselines (Sections 1 and 6).

The paper's motivating claim is that clustering trajectories *as a
whole* misses common sub-trajectories.  To measure that claim we
implement the comparators the paper discusses:

* the regression-mixture (EM) trajectory clustering of Gaffney & Smyth
  [7, 8] — the "most similar work";
* the whole-trajectory similarity measures of the related-work section
  — LCSS [20], EDR [5], and DTW [12] — plus a density-based
  whole-trajectory clusterer built on any of them.
"""

from repro.baselines.measures import (
    dtw_distance,
    edr_distance,
    lcss_similarity,
    lcss_distance,
)
from repro.baselines.regression_mixture import (
    RegressionMixtureClustering,
    RegressionMixtureResult,
)
from repro.baselines.whole_traj import (
    WholeTrajectoryDBSCAN,
    trajectory_distance_matrix,
)

__all__ = [
    "dtw_distance",
    "edr_distance",
    "lcss_similarity",
    "lcss_distance",
    "RegressionMixtureClustering",
    "RegressionMixtureResult",
    "WholeTrajectoryDBSCAN",
    "trajectory_distance_matrix",
]
