"""Whole-trajectory similarity measures from the related work.

* :func:`lcss_similarity` / :func:`lcss_distance` — Longest Common
  Subsequence for trajectories (Vlachos et al., ICDE 2002): two points
  "match" when every coordinate differs by less than ``matching_eps``
  and their indices differ by at most ``delta``.
* :func:`edr_distance` — Edit Distance on Real sequences (Chen et al.,
  SIGMOD 2005): edit distance with a real-valued match tolerance;
  substitution/indel costs are 1.
* :func:`dtw_distance` — Dynamic Time Warping (Keogh, VLDB 2002) with
  Euclidean ground distance and an optional Sakoe-Chiba band.

The paper's point (Section 6): these compare *whole* sequences, so two
trajectories sharing only a sub-path still score as distant — which is
exactly what the baseline-comparison benchmark demonstrates.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.model.trajectory import Trajectory


def _as_points(trajectory) -> np.ndarray:
    if isinstance(trajectory, Trajectory):
        return trajectory.points
    points = np.asarray(trajectory, dtype=np.float64)
    if points.ndim != 2:
        raise DatasetError(f"expected (n, d) points, got shape {points.shape}")
    return points


def lcss_similarity(
    a,
    b,
    matching_eps: float,
    delta: Optional[int] = None,
) -> float:
    """Normalised LCSS similarity in [0, 1].

    ``LCSS / min(len(a), len(b))`` where two points match when all
    coordinate differences are below *matching_eps* and (optionally)
    their index offset is at most *delta*.
    """
    pa, pb = _as_points(a), _as_points(b)
    if matching_eps < 0:
        raise DatasetError(f"matching_eps must be non-negative, got {matching_eps}")
    n, m = pa.shape[0], pb.shape[0]
    band = delta if delta is not None else max(n, m)
    # One rolling row of the DP table.
    previous = np.zeros(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        current = np.zeros(m + 1, dtype=np.int64)
        j_lo = max(1, i - band)
        j_hi = min(m, i + band)
        for j in range(j_lo, j_hi + 1):
            if np.all(np.abs(pa[i - 1] - pb[j - 1]) < matching_eps):
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return float(previous[m]) / float(min(n, m))


def lcss_distance(a, b, matching_eps: float, delta: Optional[int] = None) -> float:
    """``1 - lcss_similarity`` — a dissimilarity in [0, 1]."""
    return 1.0 - lcss_similarity(a, b, matching_eps, delta)


def edr_distance(a, b, matching_eps: float) -> float:
    """Edit Distance on Real sequences, normalised by ``max(len)``.

    Match when all coordinate differences are below *matching_eps*
    (cost 0), otherwise substitution cost 1; insertions/deletions
    cost 1.
    """
    pa, pb = _as_points(a), _as_points(b)
    if matching_eps < 0:
        raise DatasetError(f"matching_eps must be non-negative, got {matching_eps}")
    n, m = pa.shape[0], pb.shape[0]
    previous = np.arange(m + 1, dtype=np.float64)
    for i in range(1, n + 1):
        current = np.empty(m + 1, dtype=np.float64)
        current[0] = i
        matches = np.all(np.abs(pb - pa[i - 1]) < matching_eps, axis=1)
        for j in range(1, m + 1):
            sub_cost = 0.0 if matches[j - 1] else 1.0
            current[j] = min(
                previous[j - 1] + sub_cost,  # match / substitute
                previous[j] + 1.0,  # delete from a
                current[j - 1] + 1.0,  # insert from b
            )
        previous = current
    return float(previous[m]) / float(max(n, m))


def dtw_distance(a, b, band: Optional[int] = None) -> float:
    """Dynamic Time Warping with Euclidean ground distance.

    *band* is an optional Sakoe-Chiba window on the index offset.
    Returns the total warped path cost (unnormalised, as in the classic
    definition).
    """
    pa, pb = _as_points(a), _as_points(b)
    n, m = pa.shape[0], pb.shape[0]
    window = band if band is not None else max(n, m)
    window = max(window, abs(n - m))  # a feasible path must exist
    previous = np.full(m + 1, math.inf)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, math.inf)
        j_lo = max(1, i - window)
        j_hi = min(m, i + window)
        # Ground distances for this row, vectorized.
        row_costs = np.linalg.norm(pb[j_lo - 1 : j_hi] - pa[i - 1], axis=1)
        for j in range(j_lo, j_hi + 1):
            best_prev = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = row_costs[j - j_lo] + best_prev
        previous = current
    return float(previous[m])
