"""Regression-mixture trajectory clustering (Gaffney & Smyth, KDD 1999).

The paper's closest prior work: each trajectory is modelled as noisy
observations of a polynomial regression in a latent "time" variable,
and the population is a K-component mixture

    P(y_j | x_j, theta) = sum_k  f_k(y_j | x_j, theta_k) * w_k,

fit by Expectation-Maximisation.  Each component k has polynomial
coefficients ``B_k`` (one column per output dimension) and isotropic
noise ``sigma_k^2``; trajectories (not points) are the units of
cluster membership, so the E-step multiplies point likelihoods within
a trajectory.

This is a *whole-trajectory* method — the fundamental contrast with
TRACLUS (Section 6: "clustering trajectories as a whole").  The
benchmark ``bench_baseline_comparison.py`` shows it cannot isolate a
common sub-trajectory that TRACLUS finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ClusteringError
from repro.model.trajectory import Trajectory

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class RegressionMixtureResult:
    """Fitted mixture: per-trajectory hard labels, soft memberships,
    component coefficients, noise variances, weights, and the final
    log-likelihood trace."""

    labels: np.ndarray
    memberships: np.ndarray
    coefficients: List[np.ndarray]
    variances: np.ndarray
    weights: np.ndarray
    log_likelihoods: List[float]

    @property
    def n_components(self) -> int:
        return self.weights.size

    def predict_curve(self, component: int, n_points: int = 50) -> np.ndarray:
        """The component's mean curve sampled on t in [0, 1] — the
        mixture analogue of a representative trajectory."""
        t = np.linspace(0.0, 1.0, n_points)
        design = _design_matrix(t, self.coefficients[component].shape[0] - 1)
        return design @ self.coefficients[component]


def _design_matrix(t: np.ndarray, degree: int) -> np.ndarray:
    """Vandermonde design matrix [1, t, t^2, ...]."""
    return np.vander(t, degree + 1, increasing=True)


class RegressionMixtureClustering:
    """EM for a K-component polynomial regression mixture.

    Parameters
    ----------
    n_components:
        K, the number of clusters.
    degree:
        Polynomial degree of each component's mean curve (Gaffney &
        Smyth use low-order polynomials; default 3).
    max_iterations, tolerance:
        EM stopping rule (relative log-likelihood improvement).
    n_restarts:
        Independent random initialisations; the best likelihood wins.
    min_variance:
        Variance floor preventing component collapse.
    """

    def __init__(
        self,
        n_components: int,
        degree: int = 3,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        n_restarts: int = 3,
        min_variance: float = 1e-6,
        seed: int = 0,
    ):
        if n_components < 1:
            raise ClusteringError(f"n_components must be >= 1, got {n_components}")
        if degree < 0:
            raise ClusteringError(f"degree must be >= 0, got {degree}")
        self.n_components = int(n_components)
        self.degree = int(degree)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.n_restarts = int(n_restarts)
        self.min_variance = float(min_variance)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def fit(self, trajectories: Sequence[Trajectory]) -> RegressionMixtureResult:
        trajectories = list(trajectories)
        if len(trajectories) < self.n_components:
            raise ClusteringError(
                f"{len(trajectories)} trajectories cannot fill "
                f"{self.n_components} components"
            )
        # Normalised within-trajectory "time" as the regression input.
        designs = []
        outputs = []
        for trajectory in trajectories:
            t = np.linspace(0.0, 1.0, len(trajectory))
            designs.append(_design_matrix(t, self.degree))
            outputs.append(trajectory.points)

        best: Optional[RegressionMixtureResult] = None
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n_restarts):
            candidate = self._fit_once(designs, outputs, rng)
            if best is None or candidate.log_likelihoods[-1] > best.log_likelihoods[-1]:
                best = candidate
        return best

    # ------------------------------------------------------------------
    def _fit_once(
        self,
        designs: List[np.ndarray],
        outputs: List[np.ndarray],
        rng: np.random.Generator,
    ) -> RegressionMixtureResult:
        n_traj = len(designs)
        k = self.n_components
        dim = outputs[0].shape[1]

        # Initialise memberships from a random hard assignment ensuring
        # every component owns at least one trajectory.
        assignment = rng.permutation(n_traj) % k
        memberships = np.full((n_traj, k), 1e-3)
        memberships[np.arange(n_traj), assignment] = 1.0
        memberships /= memberships.sum(axis=1, keepdims=True)

        weights = np.full(k, 1.0 / k)
        coefficients = [np.zeros((self.degree + 1, dim)) for _ in range(k)]
        variances = np.ones(k)
        log_likelihoods: List[float] = []

        for _ in range(self.max_iterations):
            # ---- M-step: weighted least squares per component.
            for c in range(k):
                xtx = np.zeros((self.degree + 1, self.degree + 1))
                xty = np.zeros((self.degree + 1, dim))
                total_points = 0.0
                for i in range(n_traj):
                    w = memberships[i, c]
                    xtx += w * designs[i].T @ designs[i]
                    xty += w * designs[i].T @ outputs[i]
                    total_points += w * designs[i].shape[0]
                # Ridge jitter keeps the solve well-posed for tiny
                # memberships.
                xtx += 1e-9 * np.eye(self.degree + 1)
                coefficients[c] = np.linalg.solve(xtx, xty)
                sq_error = 0.0
                for i in range(n_traj):
                    residual = outputs[i] - designs[i] @ coefficients[c]
                    sq_error += memberships[i, c] * float(np.sum(residual**2))
                variances[c] = max(
                    sq_error / max(total_points * dim, 1e-12), self.min_variance
                )
            weights = memberships.mean(axis=0)
            weights = np.maximum(weights, 1e-12)
            weights /= weights.sum()

            # ---- E-step: per-trajectory log joint under each component.
            log_resp = np.empty((n_traj, k))
            for i in range(n_traj):
                n_points = designs[i].shape[0]
                for c in range(k):
                    residual = outputs[i] - designs[i] @ coefficients[c]
                    sq = float(np.sum(residual**2))
                    log_resp[i, c] = (
                        np.log(weights[c])
                        - 0.5 * n_points * dim * (_LOG_2PI + np.log(variances[c]))
                        - 0.5 * sq / variances[c]
                    )
            row_max = log_resp.max(axis=1, keepdims=True)
            log_norm = row_max + np.log(
                np.exp(log_resp - row_max).sum(axis=1, keepdims=True)
            )
            memberships = np.exp(log_resp - log_norm)
            log_likelihood = float(log_norm.sum())
            log_likelihoods.append(log_likelihood)
            if (
                len(log_likelihoods) > 1
                and abs(log_likelihoods[-1] - log_likelihoods[-2])
                <= self.tolerance * abs(log_likelihoods[-2])
            ):
                break

        labels = memberships.argmax(axis=1)
        return RegressionMixtureResult(
            labels=labels,
            memberships=memberships,
            coefficients=coefficients,
            variances=variances.copy(),
            weights=weights.copy(),
            log_likelihoods=log_likelihoods,
        )
