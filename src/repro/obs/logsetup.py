"""Structured logging on stdlib :mod:`logging` — zero dependencies.

The library itself stays silent by default (no handler is installed at
import time; the root ``repro`` logger propagates nowhere until
:func:`configure_logging` runs).  The serving layer calls it once at
startup, after which every record renders as one JSON object per line:

    {"ts": "2026-08-07T12:00:00.123Z", "level": "info",
     "logger": "repro.serve", "msg": "listening",
     "host": "127.0.0.1", "port": 8765}

Key-value payload fields ride the stdlib ``extra=`` mechanism —
``log.info("shed", request_id=..., pending=...)`` via the tiny
:class:`KVLoggerAdapter` — so downstream code never string-formats
telemetry into messages.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

#: Attribute set of a pristine LogRecord — anything beyond these came
#: in through ``extra=`` and belongs in the structured payload.
_RESERVED = frozenset(
    logging.LogRecord(
        "x", logging.INFO, "path", 0, "msg", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` fields are merged in."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
        )
        payload = {
            "ts": f"{stamp}.{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for name, value in record.__dict__.items():
            if name not in _RESERVED and not name.startswith("_"):
                payload[name] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class KVLoggerAdapter(logging.LoggerAdapter):
    """``log.info("msg", key=value, ...)`` — keywords become structured
    ``extra`` fields instead of %-format arguments."""

    def __init__(self, logger: logging.Logger):
        super().__init__(logger, {})

    def process(self, msg, kwargs):
        extra = {
            name: kwargs.pop(name)
            for name in list(kwargs)
            if name not in ("exc_info", "stack_info", "stacklevel")
        }
        kwargs["extra"] = extra
        return msg, kwargs


def configure_logging(
    level: int = logging.INFO, stream: Optional[IO] = None
) -> logging.Logger:
    """Install the JSON-line handler on the ``repro`` root logger
    (idempotent: reconfiguring replaces the previous handler)."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> KVLoggerAdapter:
    """A structured logger under the ``repro`` hierarchy."""
    qualified = name if name.startswith("repro") else f"repro.{name}"
    return KVLoggerAdapter(logging.getLogger(qualified))
