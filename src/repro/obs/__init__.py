"""Zero-dependency telemetry: metrics, spans, structured logs.

Three pieces, each usable alone:

* :mod:`repro.obs.metrics` — a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms with mergeable JSON snapshots (pool workers
  ship deltas home) and Prometheus text rendering (``GET /metrics``);
* :mod:`repro.obs.trace` — ambient per-request span trees
  (``with span("graph_build"): ...``) activated by the serving layer,
  free when inactive;
* :mod:`repro.obs.logsetup` / :mod:`repro.obs.access_log` — JSON-line
  structured logging on stdlib ``logging`` and the request access log.

Telemetry is **off by default** everywhere in the library: every
instrumented constructor takes ``metrics=None`` which resolves to the
shared disabled :data:`~repro.obs.metrics.NULL_REGISTRY`, whose
instruments are shared no-ops.  ``repro serve`` enables it
(``--no-telemetry`` opts back out); ``benchmarks/bench_serve.py``
gates that the disabled path stays within noise of the enabled run's
warm latency.
"""

from repro.obs.access_log import AccessLog
from repro.obs.logsetup import configure_logging, get_logger
from repro.obs.scrape import (
    PROMETHEUS_CONTENT_TYPE,
    ScrapeServer,
    start_scrape_server,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_SECONDS,
    NULL_REGISTRY,
    SIZE_BUCKETS_BYTES,
    MetricsRegistry,
    aggregate_snapshots,
    histogram_quantile,
    render_prometheus,
)
from repro.obs.trace import (
    Span,
    Trace,
    activate_trace,
    current_trace,
    new_request_id,
    span,
)

__all__ = [
    "AccessLog",
    "LATENCY_BUCKETS_SECONDS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PROMETHEUS_CONTENT_TYPE",
    "SIZE_BUCKETS_BYTES",
    "ScrapeServer",
    "Span",
    "Trace",
    "activate_trace",
    "aggregate_snapshots",
    "configure_logging",
    "current_trace",
    "get_logger",
    "histogram_quantile",
    "new_request_id",
    "render_prometheus",
    "span",
    "start_scrape_server",
]
