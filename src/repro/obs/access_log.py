"""JSONL access log for the serving layer.

One line per completed HTTP request, append-only, flushed per write so
``tail -f`` and crash forensics both work.  The schema (all fields
always present unless noted):

=================  ======================================================
field              meaning
=================  ======================================================
``ts``             wall-clock epoch seconds at request start
``request_id``     the id echoed to the client as ``X-Request-Id``
``method``         HTTP method
``path``           request path (no query string)
``status``         response status code
``duration_ms``    end-to-end wall time on the server
``corpus``         corpus name (operation requests only)
``op``             operation name (operation requests only)
``coalesced``      request joined another's in-flight build
``builds``         stage -> rebuild count this request triggered
``queue_ms``       executor dispatch wait (telemetry on, ops only)
``compute_ms``     worker-side compute time (telemetry on, ops only)
``spans``          merged span tree (telemetry on, ops only)
=================  ======================================================

Writes hold a lock (the asyncio server writes from one loop, but the
log is also safe to share with worker threads) and each record is one
``json.dumps`` — no buffering beyond the OS.
"""

from __future__ import annotations

import json
import threading
from typing import Optional


class AccessLog:
    """Append-only JSONL sink; ``close()`` is idempotent."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[object] = open(  # noqa: SIM115 - long-lived
            path, "a", encoding="utf-8"
        )
        self.lines_written = 0

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.lines_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
