"""A standalone Prometheus scrape surface for non-serving processes.

The serving layer exposes ``/v1/metrics`` as one route of its async
HTTP front-end; long-running *CLI* processes — a sharded ``repro
stream --shards K`` session is the motivating one — have no server to
hang that route on.  :func:`start_scrape_server` gives them the same
exposition for the cost of one daemon thread: a provider callable
returns the current metrics snapshot (for a sharded session, the
coordinator registry aggregated with every worker's shipped
snapshot), and the thread answers ``GET /v1/metrics`` (and the
deprecated unversioned ``/metrics``, with the same ``Deprecation``
header contract as the serving layer) with
:func:`~repro.obs.metrics.render_prometheus` over it.

Standard library only (:mod:`http.server` on a daemon thread); the
provider is called on the scrape thread, which is safe because
registry snapshots take the registry lock.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.metrics import render_prometheus

#: The exposition content type every scrape stack expects.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ScrapeServer:
    """Handle on a running scrape thread; ``close()`` stops it."""

    def __init__(self, server: ThreadingHTTPServer, thread: threading.Thread):
        self._server = server
        self._thread = thread

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ScrapeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_scrape_server(
    snapshot_provider: Callable[[], dict],
    port: int = 0,
    host: str = "127.0.0.1",
) -> ScrapeServer:
    """Serve ``GET /v1/metrics`` from a daemon thread; *port* 0 binds an
    ephemeral port (read it back from ``ScrapeServer.port``)."""

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path not in ("/v1/metrics", "/metrics"):
                self.send_response(404)
                self.end_headers()
                return
            body = render_prometheus(snapshot_provider()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            if path == "/metrics":
                self.send_header("Deprecation", "true")
                self.send_header(
                    "Link", '</v1/metrics>; rel="successor-version"'
                )
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # quiet: scrapes are periodic
            pass

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-scrape", daemon=True
    )
    thread.start()
    return ScrapeServer(server, thread)
