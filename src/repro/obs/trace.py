"""Per-request span tracing over a context-local active trace.

The tracer is deliberately ambient: instrumented layers write

    with span("graph_build"):
        ...

and never thread a tracer object through their signatures.  When no
trace is active (every library call outside the serving layer, and all
of them when telemetry is off) the ``span`` context manager is a
handful of attribute loads and one ``ContextVar.get`` — cheap enough
to leave in hot paths unconditionally.

A :class:`Trace` is activated for the dynamic extent of one request
with :func:`activate_trace`; the active trace lives in a
:class:`contextvars.ContextVar`, so concurrent asyncio requests (each
task gets its own context) and pool-worker threads (each thread starts
from an empty context) never see each other's spans.  Spans nest by an
explicit stack on the trace — timings are ``time.perf_counter``
(monotonic) offsets from the trace start, plus one wall-clock stamp on
the trace itself for log correlation.

Serving integration: the front-end activates a trace per HTTP request
(request id echoed as ``X-Request-Id``), the pool worker activates its
*own* trace around the compute (contexts do not cross process — or
executor-thread — boundaries), ships ``Trace.span_dicts()`` home in
the response payload, and the front-end grafts them under its dispatch
span (:meth:`Trace.graft`) so ``--access-log`` records one merged tree
per request.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Dict, List, Optional

_ACTIVE_TRACE: ContextVar[Optional["Trace"]] = ContextVar(
    "repro_active_trace", default=None
)

_REQUEST_COUNTER = itertools.count()
_REQUEST_SALT = uuid.uuid4().hex[:8]


def new_request_id() -> str:
    """Process-unique request id: stable salt + pid + sequence — cheap,
    collision-safe across the worker fleet, grep-friendly in logs."""
    return f"{_REQUEST_SALT}-{os.getpid()}-{next(_REQUEST_COUNTER):06d}"


class Span:
    """One timed region.  ``offset``/``duration`` are seconds relative
    to the owning trace's start; ``children`` preserve call order."""

    __slots__ = ("name", "meta", "offset", "duration", "children")

    def __init__(self, name: str, meta: Optional[Dict] = None):
        self.name = name
        self.meta = meta or {}
        self.offset = 0.0
        self.duration = 0.0
        self.children: List[Span] = []

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "offset_ms": round(self.offset * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.meta:
            record["meta"] = dict(self.meta)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record


class Trace:
    """The span tree of one request (or one worker-side compute)."""

    __slots__ = (
        "request_id", "started_wall", "_start", "_stack", "spans", "_lock",
    )

    def __init__(self, request_id: Optional[str] = None):
        self.request_id = request_id or new_request_id()
        self.started_wall = time.time()
        self._start = time.perf_counter()
        self._stack: List[Span] = []
        self.spans: List[Span] = []
        # Spans open/close on the activating task's context, but a
        # graft may arrive from the same task after worker payloads
        # return; the lock keeps mutation safe if callers fan out.
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------
    def begin(self, name: str, meta: Optional[Dict] = None) -> Span:
        span_ = Span(name, meta)
        span_.offset = time.perf_counter() - self._start
        with self._lock:
            if self._stack:
                self._stack[-1].children.append(span_)
            else:
                self.spans.append(span_)
            self._stack.append(span_)
        return span_

    def end(self, span_: Span) -> None:
        span_.duration = (time.perf_counter() - self._start) - span_.offset
        with self._lock:
            if self._stack and self._stack[-1] is span_:
                self._stack.pop()
            elif span_ in self._stack:  # tolerate mis-nested exits
                self._stack.remove(span_)

    def graft(self, span_dicts: List[dict], offset_ms: float = 0.0) -> None:
        """Attach already-serialised spans (a worker's
        :meth:`span_dicts`) under the innermost open span — or at the
        top level — shifting their offsets by ``offset_ms`` so the
        merged tree stays on this trace's clock."""
        grafted = [_shift(dict(record), offset_ms) for record in span_dicts]
        with self._lock:
            target = self._stack[-1].children if self._stack else self.spans
            target.extend(_DictSpan(record) for record in grafted)

    # -- export -------------------------------------------------------------
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def span_dicts(self) -> List[dict]:
        with self._lock:
            return [span_.to_dict() for span_ in self.spans]

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "started": self.started_wall,
            "spans": self.span_dicts(),
        }


class _DictSpan:
    """An already-serialised span grafted from another process; quacks
    just enough of :class:`Span` for export."""

    __slots__ = ("record",)

    def __init__(self, record: dict):
        self.record = record

    def to_dict(self) -> dict:
        return self.record


def _shift(record: dict, offset_ms: float) -> dict:
    record["offset_ms"] = round(record.get("offset_ms", 0.0) + offset_ms, 3)
    if "children" in record:
        record["children"] = [
            _shift(dict(child), offset_ms) for child in record["children"]
        ]
    return record


class activate_trace:
    """Context manager making *trace* (or a fresh one) the ambient
    trace for the dynamic extent of the block."""

    __slots__ = ("trace", "_token")

    def __init__(self, trace: Optional[Trace] = None,
                 request_id: Optional[str] = None):
        self.trace = trace if trace is not None else Trace(request_id)
        self._token = None

    def __enter__(self) -> Trace:
        self._token = _ACTIVE_TRACE.set(self.trace)
        return self.trace

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE_TRACE.reset(self._token)


def current_trace() -> Optional[Trace]:
    """The ambient trace, or ``None`` outside any request."""
    return _ACTIVE_TRACE.get()


class span:
    """``with span("stage"): ...`` — records into the ambient trace,
    free no-op when none is active."""

    __slots__ = ("name", "meta", "_trace", "_span")

    def __init__(self, name: str, **meta):
        self.name = name
        self.meta = meta

    def __enter__(self) -> Optional[Span]:
        trace = _ACTIVE_TRACE.get()
        self._trace = trace
        if trace is None:
            self._span = None
            return None
        self._span = trace.begin(self.name, self.meta or None)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is not None:
            if exc_type is not None:
                self._span.meta["error"] = exc_type.__name__
            self._trace.end(self._span)
