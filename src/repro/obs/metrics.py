"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single sink every instrumented layer
(:mod:`repro.api.cache`, :mod:`repro.api.workspace`,
:mod:`repro.sweep.engine`, :mod:`repro.stream.pipeline`,
:mod:`repro.serve`) records into.  Three properties shape the design:

* **Default-off is near-free.**  A registry built with
  ``enabled=False`` hands out shared null instruments whose ``inc`` /
  ``observe`` are empty methods — the hot-path cost of instrumentation
  when telemetry is off is one no-op call.  Library entry points
  default to :data:`NULL_REGISTRY`; only ``repro serve`` (and tests)
  turn telemetry on.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
  plain JSON-safe dict and :func:`aggregate_snapshots` sums any number
  of them — how per-process pool workers ship their counters back to
  the serving front-end, which renders one fleet-wide view.  Counters
  and histogram buckets add; gauges add too (each worker reports its
  own in-flight share).
* **Prometheus text exposition.**  :func:`render_prometheus` turns a
  snapshot into the ``text/plain; version=0.0.4`` format every scrape
  stack ingests — ``GET /metrics`` on the serving layer is exactly
  this over the aggregated snapshot.

Histograms use fixed buckets chosen at creation
(:data:`LATENCY_BUCKETS_SECONDS` / :data:`SIZE_BUCKETS_BYTES` cover
the two families this package records), so merging is index-wise
addition and quantiles (:func:`histogram_quantile`) are the usual
within-bucket linear interpolation.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 100 µs .. 10 s, roughly 1-2.5-5
#: per decade — the span of a warm cache hit up to a cold corpus build.
LATENCY_BUCKETS_SECONDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default size buckets (bytes): 1 KiB .. 256 MiB in x8 steps — the
#: span of a quality scalar artifact up to a large label grid.
SIZE_BUCKETS_BYTES = (
    1024, 8192, 65536, 524288, 4194304, 33554432, 268435456,
)


def _metric_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical JSON identity of one (name, labels) series — snapshot
    dict keys stay strings so payloads cross process boundaries as
    plain JSON."""
    return json.dumps([name, sorted(labels.items())])


def _parse_key(key: str) -> Tuple[str, List[Tuple[str, str]]]:
    name, items = json.loads(key)
    return name, [tuple(item) for item in items]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Value that can go up and down (in-flight requests, pool size)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with an implicit +Inf bucket.

    ``_counts[i]`` is the **non-cumulative** count of observations in
    ``(buckets[i-1], buckets[i]]`` (index ``len(buckets)`` is +Inf);
    rendering cumulates, merging adds index-wise.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_lock")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
    ):
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"buckets must be sorted unique: {buckets}")
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _snapshot(self) -> dict:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
            }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram the disabled registry hands
    out — the entire cost of default-off telemetry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def value(self) -> float:
        return 0.0

    def count(self) -> int:
        return 0

    def sum(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home of every metric series in one process.

    Instruments are identified by ``(name, labels)``; asking twice
    returns the same object, so call sites may either hold a reference
    (hot paths) or re-ask per event (cold paths).  A name keeps the
    type and help text of its first registration.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    def _get_or_create(self, kind: str, name: str, help_text: str,
                       labels: Dict[str, str], factory):
        key = _metric_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                declared = self._types.get(name)
                if declared is not None and declared != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {declared}"
                    )
                metric = factory()
                self._metrics[key] = metric
                self._types[name] = kind
                if help_text and name not in self._help:
                    self._help[name] = help_text
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get_or_create(
            "counter", name, help, labels, lambda: Counter(name, labels)
        )

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self._get_or_create(
            "gauge", name, help, labels, lambda: Gauge(name, labels)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
        **labels: str,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT
        metric = self._get_or_create(
            "histogram", name, help, labels,
            lambda: Histogram(name, labels, buckets),
        )
        self._buckets.setdefault(name, metric.buckets)
        return metric

    def snapshot(self) -> dict:
        """JSON-safe state of every series (mergeable, shippable)."""
        if not self.enabled:
            return {"series": {}, "types": {}, "help": {}}
        with self._lock:
            metrics = list(self._metrics.items())
            types = dict(self._types)
            help_text = dict(self._help)
        series: Dict[str, object] = {}
        for key, metric in metrics:
            if isinstance(metric, Histogram):
                series[key] = metric._snapshot()
            else:
                series[key] = metric.value()
        return {"series": series, "types": types, "help": help_text}


#: The shared disabled registry library defaults point at.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def aggregate_snapshots(snapshots: Iterable[dict]) -> dict:
    """Sum any number of :meth:`MetricsRegistry.snapshot` payloads into
    one fleet-wide snapshot (the serving front-end + its pool
    workers)."""
    merged: dict = {"series": {}, "types": {}, "help": {}}
    for snapshot in snapshots:
        if not snapshot:
            continue
        merged["types"].update(snapshot.get("types", {}))
        for name, text in snapshot.get("help", {}).items():
            merged["help"].setdefault(name, text)
        for key, value in snapshot.get("series", {}).items():
            existing = merged["series"].get(key)
            if existing is None:
                if isinstance(value, dict):
                    value = {
                        "buckets": list(value["buckets"]),
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                    }
                merged["series"][key] = value
            elif isinstance(value, dict):
                if existing["buckets"] != list(value["buckets"]):
                    raise ValueError(
                        f"histogram {key} has mismatched buckets across "
                        f"snapshots"
                    )
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], value["counts"])
                ]
                existing["sum"] += value["sum"]
            else:
                merged["series"][key] = existing + value
    return merged


def histogram_quantile(hist: dict, fraction: float) -> Optional[float]:
    """Estimate a quantile from one snapshot histogram (linear
    interpolation within the winning bucket; ``None`` when empty)."""
    counts = hist["counts"]
    total = sum(counts)
    if total == 0:
        return None
    buckets = hist["buckets"]
    rank = fraction * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        lower = cumulative
        cumulative += count
        if cumulative >= rank:
            low = buckets[index - 1] if index > 0 else 0.0
            high = (
                buckets[index] if index < len(buckets)
                else buckets[-1]  # +Inf bucket: clamp to the last edge
            )
            within = (rank - lower) / count
            return low + (high - low) * min(max(within, 0.0), 1.0)
    return buckets[-1]


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(items: Sequence[Tuple[str, str]]) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in items
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _format_le(edge: float) -> str:
    return _format_value(edge)


def render_prometheus(snapshot: dict) -> str:
    """One snapshot as Prometheus text exposition (version 0.0.4)."""
    types = snapshot.get("types", {})
    help_text = snapshot.get("help", {})
    families: Dict[str, List[Tuple[List[Tuple[str, str]], object]]] = {}
    for key, value in snapshot.get("series", {}).items():
        name, labels = _parse_key(key)
        families.setdefault(name, []).append((labels, value))
    lines: List[str] = []
    for name in sorted(families):
        kind = types.get(name, "untyped")
        text = help_text.get(name)
        if text:
            lines.append(f"# HELP {name} {text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in sorted(
            families[name], key=lambda item: item[0]
        ):
            if isinstance(value, dict):
                cumulative = 0
                for edge, count in zip(value["buckets"], value["counts"]):
                    cumulative += count
                    items = labels + [("le", _format_le(edge))]
                    lines.append(
                        f"{name}_bucket{_format_labels(items)} {cumulative}"
                    )
                cumulative += value["counts"][-1]
                items = labels + [("le", "+Inf")]
                lines.append(
                    f"{name}_bucket{_format_labels(items)} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(value['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {cumulative}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
