"""Figure-12 labels as a pure function of the ε-graph.

The batch scan of :class:`~repro.cluster.dbscan.LineSegmentDBSCAN` is
deterministic in a way that can be *unwound* (the full argument lives in
the :mod:`repro.stream.online_dbscan` docstring):

* a segment is **core** iff its ε-cardinality reaches MinLns;
* the clusters' core sets are the connected **components of the core
  subgraph**, and clusters form in ascending order of their smallest
  core id (their *seed*);
* a **border** (non-core with core neighbors) goes to the
  earliest-formed adjacent component, *unless* it lies in the
  ε-neighborhood of a later-formed cluster's seed — Figure 12 line 07
  assigns the whole seed neighborhood unconditionally, so the last
  adjacent seed wins;
* Step 3 drops clusters whose trajectory cardinality ``|PTR(C)|`` falls
  below a threshold and renumbers survivors densely in formation order.

:class:`CoreGraphLabeler` maintains exactly that state — the core set,
per-id core-neighbor sets, and the core components (union-by-size
merges, bounded-BFS splits) — under promotion, demotion, and removal,
and derives the label array.  It is shared by two consumers that update
the state along different axes:

* :class:`~repro.stream.online_dbscan.OnlineDBSCAN` — segments arrive
  and leave over *time* (inserts, evictions, compaction remaps);
* :class:`~repro.sweep.engine.SweepEngine` — the segment set is fixed
  and ε *grows* along a parameter grid, so edges are admitted in
  ascending distance order and cores are only ever promoted.

Ids are opaque non-negative integers; the only requirement is that
their numeric order equals the batch scan's positional order (slot
order for the stream, segment position for the sweep).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.model.cluster import NOISE


class CoreGraphLabeler:
    """Core flags, core-neighbor sets, and core-subgraph components of
    an ε-graph, with the Figure-12 label derivation on top.

    The caller owns cardinalities and the graph itself; this class owns
    everything derived from "which ids are core and how are they
    connected".  ``adjacent`` callbacks must return the id's current
    graph neighborhood (excluding itself).
    """

    __slots__ = (
        "core",
        "core_neighbors",
        "_comp_of",
        "_comp_members",
        "_comp_min",
        "_next_comp",
        "journal",
    )

    def __init__(self):
        self.core: Set[int] = set()
        # Core ε-neighbors of every tracked id (cores adjacent to a core
        # are, by the component invariant, always in the same component).
        self.core_neighbors: Dict[int, Set[int]] = {}
        # Core components: opaque token per core.  Tokens come from a
        # monotone counter, never from ids — a demoted id can be
        # promoted again later, and an id token it minted earlier may
        # still name a surviving component.
        self._comp_of: Dict[int, int] = {}
        self._comp_members: Dict[int, Set[int]] = {}
        self._comp_min: Dict[int, int] = {}
        self._next_comp = 0
        #: Optional event sink.  When a consumer assigns a list here,
        #: every component-level state change appends one tuple:
        #:
        #: * ``("new", token, min_member)`` — component minted;
        #: * ``("union", absorbed, survivor, moved, min_changed)`` —
        #:   ``moved`` is the tuple of member ids that switched token;
        #: * ``("keep", token, min_changed)`` — component survived a
        #:   repair intact (possibly with a new minimum);
        #: * ``("split", token, new_tokens)`` — component reclustered
        #:   into two or more parts (each part also emitted "new");
        #: * ``("drop", token)`` — component vanished (last core left).
        #:
        #: ``None`` (the default, and what the sweep engine keeps)
        #: records nothing and costs nothing.
        self.journal: Optional[List[tuple]] = None

    # -- introspection -------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self.core)

    @property
    def n_components(self) -> int:
        return len(self._comp_members)

    def is_core(self, uid: int) -> bool:
        return uid in self.core

    def component_of(self, uid: int) -> int:
        """Component token of core *uid*."""
        return self._comp_of[uid]

    def component_min(self, token: int) -> int:
        """Smallest core member — the component's formation key."""
        return self._comp_min[token]

    def component_members(self, token: int) -> Set[int]:
        """Core members of component *token* (live view, do not mutate)."""
        return self._comp_members[token]

    # -- tracking ------------------------------------------------------------
    def track(self, uid: int, adjacent: Iterable[int]) -> None:
        """Start tracking *uid*: record its currently-core neighbors."""
        self.core_neighbors[uid] = {
            int(v) for v in adjacent if int(v) in self.core
        }

    def untrack(self, uid: int) -> None:
        del self.core_neighbors[uid]

    # -- component machinery -------------------------------------------------
    def new_component(self, members: Set[int]) -> int:
        token = self._next_comp
        self._next_comp += 1
        for member in members:
            self._comp_of[member] = token
        self._comp_members[token] = members
        self._comp_min[token] = min(members)
        if self.journal is not None:
            self.journal.append(("new", token, self._comp_min[token]))
        return token

    def union(self, a: int, b: int) -> None:
        """Merge the components of cores *a* and *b* (union by size)."""
        ra, rb = self._comp_of[a], self._comp_of[b]
        if ra == rb:
            return
        if len(self._comp_members[ra]) < len(self._comp_members[rb]):
            ra, rb = rb, ra
        small = self._comp_members.pop(rb)
        for member in small:
            self._comp_of[member] = ra
        self._comp_members[ra].update(small)
        small_min = self._comp_min.pop(rb)
        min_changed = small_min < self._comp_min[ra]
        if min_changed:
            self._comp_min[ra] = small_min
        if self.journal is not None:
            self.journal.append(("union", rb, ra, tuple(small), min_changed))

    def promote(
        self, ids: Sequence[int], adjacent: Callable[[int], Iterable[int]]
    ) -> None:
        """Make *ids* core (flags and singleton components first, then
        unions — order-independent even when two promotions are
        adjacent).  Union order is canonical (ascending neighbor id),
        so which token survives a merge chain is a function of the
        state alone, not of set iteration history — stable cluster
        identities stay reproducible across checkpoint restores."""
        for u in ids:
            self.core.add(u)
            self.new_component({u})
            for w in adjacent(u):
                self.core_neighbors[int(w)].add(u)
        for u in ids:
            for w in sorted(self.core_neighbors[u]):
                self.union(u, w)

    def demote(
        self,
        uid: int,
        adjacent: Iterable[int],
        removals_by_root: Dict[int, List[Tuple[int, int]]],
        degree: Optional[int] = None,
    ) -> None:
        """Remove *uid* from the core set and its component, recording
        the removal for a later :meth:`repair`.  ``degree`` is the
        core degree at removal time; it defaults to the current
        ``len(core_neighbors[uid])`` and must be passed explicitly when
        the caller already untracked the id."""
        if degree is None:
            degree = len(self.core_neighbors[uid])
        self.core.discard(uid)
        for w in adjacent:
            self.core_neighbors[int(w)].discard(uid)
        root = self._comp_of.pop(uid)
        self._comp_members[root].discard(uid)
        removals_by_root.setdefault(root, []).append((uid, degree))

    def repair(
        self, removals_by_root: Dict[int, List[Tuple[int, int]]]
    ) -> None:
        """Re-establish connectivity of each affected component after
        core removals.  ``removals_by_root[root]`` lists ``(id,
        core_degree_at_removal)`` pairs; a lone degree<=1 removal cannot
        disconnect the rest, so the BFS recluster (bounded to the
        component) runs only when a split is possible."""
        for root, removals in removals_by_root.items():
            members = self._comp_members[root]
            if not members:
                del self._comp_members[root]
                del self._comp_min[root]
                if self.journal is not None:
                    self.journal.append(("drop", root))
                continue
            if len(removals) == 1 and removals[0][1] <= 1:
                min_changed = removals[0][0] == self._comp_min[root]
                if min_changed:
                    self._comp_min[root] = min(members)
                if self.journal is not None:
                    self.journal.append(("keep", root, min_changed))
                continue
            # Recluster bounded to the component.  Seeds are taken in
            # ascending id order so that, when the component does
            # split, the parts' token order is canonical.
            remaining = set(members)
            components: List[Set[int]] = []
            for seed in sorted(members):
                if seed not in remaining:
                    continue
                remaining.discard(seed)
                component = {seed}
                stack = [seed]
                while stack:
                    u = stack.pop()
                    for w in self.core_neighbors[u]:
                        if w in remaining:
                            remaining.discard(w)
                            component.add(w)
                            stack.append(w)
                components.append(component)
            if len(components) == 1:
                # No split after all: the component keeps its token
                # (members' _comp_of entries still point at it), so the
                # cluster's stable identity survives the demotion.
                old_min = self._comp_min[root]
                self._comp_min[root] = min(members)
                if self.journal is not None:
                    self.journal.append(
                        ("keep", root, self._comp_min[root] != old_min)
                    )
                continue
            del self._comp_members[root]
            del self._comp_min[root]
            minted = tuple(
                self.new_component(component) for component in components
            )
            if self.journal is not None:
                self.journal.append(("split", root, minted))

    # -- wholesale state changes ---------------------------------------------
    def reset(self) -> None:
        self.core.clear()
        self.core_neighbors.clear()
        self._comp_of.clear()
        self._comp_members.clear()
        self._comp_min.clear()

    def rebuild(
        self,
        ids: Iterable[int],
        adjacent: Callable[[int], Iterable[int]],
        core_ids: Iterable[int],
    ) -> None:
        """Recompute everything from scratch for a known core set — one
        O(V + E) pass.  The component partition is the one incremental
        maintenance would have reached (root tokens are arbitrary,
        labels are not)."""
        self.reset()
        self.core = {int(u) for u in core_ids}
        for uid in ids:
            uid = int(uid)
            self.core_neighbors[uid] = {
                int(v) for v in adjacent(uid) if int(v) in self.core
            }
        unvisited = set(self.core)
        while unvisited:
            seed = unvisited.pop()
            component = {seed}
            stack = [seed]
            while stack:
                u = stack.pop()
                for w in self.core_neighbors[u]:
                    if w in unvisited:
                        unvisited.discard(w)
                        component.add(w)
                        stack.append(w)
            self.new_component(component)

    def remap_ids(self, remap: np.ndarray) -> None:
        """Rename every tracked id through *remap* (old id -> new id).
        The map must be monotone over live ids so that formation order
        (component minima), the border seed rule, and the Step-3 filter
        all see the same relative order."""
        self.core = {int(remap[uid]) for uid in self.core}
        self.core_neighbors = {
            int(remap[uid]): {int(remap[mate]) for mate in mates}
            for uid, mates in self.core_neighbors.items()
        }
        self._comp_of = {
            int(remap[uid]): token for uid, token in self._comp_of.items()
        }
        self._comp_members = {
            token: {int(remap[uid]) for uid in members}
            for token, members in self._comp_members.items()
        }
        self._comp_min = {
            token: int(remap[uid]) for token, uid in self._comp_min.items()
        }

    # -- label derivation ----------------------------------------------------
    def labels_for(self, ids: Sequence[int]) -> Tuple[np.ndarray, int]:
        """Figure-12 labels over *ids* (ascending), before the Step-3
        filter.  Returns ``(labels, n_clusters)``: >= 0 cluster ids in
        formation order, -1 noise."""
        labels = np.full(len(ids), NOISE, dtype=np.int64)
        roots_in_formation_order = sorted(
            self._comp_members, key=self._comp_min.__getitem__
        )
        rank = {root: k for k, root in enumerate(roots_in_formation_order)}
        core = self.core
        comp_of = self._comp_of
        comp_min = self._comp_min
        core_neighbors = self.core_neighbors
        for position, uid in enumerate(ids):
            if uid in core:
                labels[position] = rank[comp_of[uid]]
                continue
            adjacent_cores = core_neighbors[uid]
            if not adjacent_cores:
                continue
            # Figure 12 border rule (module docstring): the last seed
            # whose neighborhood contains the segment wins (line 07
            # overwrites unconditionally); with no adjacent seed, the
            # earliest-formed cluster's expansion claimed it first.
            first_claim = len(rank)
            last_seed = -1
            for neighbor in adjacent_cores:
                root = comp_of[neighbor]
                neighbor_rank = rank[root]
                if neighbor_rank < first_claim:
                    first_claim = neighbor_rank
                if comp_min[root] == neighbor and neighbor_rank > last_seed:
                    last_seed = neighbor_rank
            labels[position] = last_seed if last_seed >= 0 else first_claim
        return labels, len(rank)

    def __repr__(self) -> str:
        return (
            f"CoreGraphLabeler(n_cores={self.n_cores}, "
            f"n_components={self.n_components})"
        )


def apply_cardinality_filter(
    labels: np.ndarray,
    traj_ids: np.ndarray,
    n_clusters: int,
    threshold: float,
) -> np.ndarray:
    """Figure 12 Step 3 in place: drop clusters with ``|PTR(C)| <
    threshold`` and renumber survivors densely in formation order.
    ``traj_ids`` is aligned with *labels*; the (possibly rewritten)
    label array is returned for convenience."""
    if n_clusters == 0:
        return labels
    clustered = labels >= 0
    pairs = np.unique(
        np.stack([labels[clustered], traj_ids[clustered]]), axis=1
    )
    ptr = np.bincount(pairs[0], minlength=n_clusters)
    keep = ptr >= threshold
    dense = np.cumsum(keep) - 1
    labels[clustered] = np.where(
        keep[labels[clustered]], dense[labels[clustered]], NOISE
    )
    return labels
