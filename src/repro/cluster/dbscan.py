"""Line Segment Clustering — the DBSCAN variant of Figure 12.

A faithful transcription, including the details that distinguish it
from textbook DBSCAN:

* the whole seed neighborhood receives the cluster id immediately
  (line 07), before expansion;
* a segment previously marked *noise* can be absorbed into a later
  cluster (line 23) but is not expanded further (line 25 only enqueues
  segments that were *unclassified*);
* after all clusters are formed, clusters whose *trajectory
  cardinality* ``|PTR(C)|`` (Definition 10) falls below a threshold are
  removed (Step 3, lines 13-16) — in the extreme a density-connected
  set drawn from a single meandering trajectory explains nothing about
  the database;
* the ε-neighborhood cardinality may be *weighted* (Section 4.2's
  extension: sum the weights of the neighbors instead of counting
  them), so a strong hurricane counts for more.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.cardinality import filter_by_trajectory_cardinality
from repro.cluster.neighborhood import NeighborhoodEngine, make_neighborhood_engine
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.model.cluster import NOISE, UNCLASSIFIED, Cluster, clusters_from_labels
from repro.model.segmentset import SegmentSet


class LineSegmentDBSCAN:
    """Density-based clustering of line segments (Figure 12).

    Parameters
    ----------
    eps:
        Neighborhood radius ε (in TRACLUS distance units).
    min_lns:
        Density threshold MinLns.
    distance:
        Distance configuration (weights / directedness); defaults to
        unit weights, directed.
    cardinality_threshold:
        Trajectory-cardinality cut-off for Step 3.  The paper notes "a
        threshold other than MinLns can be used"; defaults to
        ``min_lns``.
    use_weights:
        When True, ``|N_eps(L)|`` is the *sum of segment weights* in the
        neighborhood instead of the count.
    neighborhood_method:
        ``"auto"`` (default), ``"brute"``, ``"grid"``, ``"rtree"``, or
        ``"batch"`` (see :func:`~repro.cluster.neighborhood.make_neighborhood_engine`).
    """

    def __init__(
        self,
        eps: float,
        min_lns: float,
        distance: Optional[SegmentDistance] = None,
        cardinality_threshold: Optional[float] = None,
        use_weights: bool = False,
        neighborhood_method: str = "auto",
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if min_lns <= 0:
            raise ClusteringError(f"min_lns must be positive, got {min_lns}")
        self.eps = float(eps)
        self.min_lns = float(min_lns)
        self.distance = distance if distance is not None else SegmentDistance()
        self.cardinality_threshold = (
            float(cardinality_threshold)
            if cardinality_threshold is not None
            else float(min_lns)
        )
        self.use_weights = bool(use_weights)
        self.neighborhood_method = neighborhood_method

    # ------------------------------------------------------------------
    def _cardinality(self, neighbors: np.ndarray, segments: SegmentSet) -> float:
        """``|N_eps|`` — weighted sum or plain count (Section 4.2)."""
        if self.use_weights:
            return float(np.sum(segments.weights[neighbors]))
        return float(neighbors.size)

    def fit(
        self,
        segments: SegmentSet,
        engine: Optional[NeighborhoodEngine] = None,
    ) -> Tuple[List[Cluster], np.ndarray]:
        """Cluster the segment set.

        Returns ``(clusters, labels)``: the surviving clusters (after
        the Step-3 cardinality filter, with densely renumbered ids) and
        the per-segment label array aligned with *segments* (>= 0
        cluster id, -1 noise).  Labels of members of removed clusters
        are reset to noise so the two outputs stay consistent.

        A prebuilt *engine* (e.g. a shared
        :class:`~repro.cluster.neighbor_graph.PrecomputedNeighborhood`)
        may be passed to reuse neighborhoods across consumers; it must
        cover *segments* at this ``eps``.
        """
        n = len(segments)
        labels = np.full(n, UNCLASSIFIED, dtype=np.int64)
        if n == 0:
            return [], labels

        if engine is None:
            engine = make_neighborhood_engine(
                segments, self.eps, self.distance,
                method=self.neighborhood_method,
            )
        else:
            engine_eps = getattr(engine, "eps", None)
            if engine_eps is not None and engine_eps != self.eps:
                raise ClusteringError(
                    f"prebuilt engine answers eps={engine_eps} queries but "
                    f"this DBSCAN is configured with eps={self.eps}"
                )
            engine_segments = getattr(engine, "segments", None)
            if engine_segments is not None and len(engine_segments) != n:
                raise ClusteringError(
                    f"prebuilt engine covers {len(engine_segments)} segments "
                    f"but the fitted set has {n}"
                )

        cluster_id = 0  # line 01
        for i in range(n):  # line 03
            if labels[i] != UNCLASSIFIED:  # line 04
                continue
            neighbors = engine.neighbors_of(i)  # line 05
            if self._cardinality(neighbors, segments) >= self.min_lns:  # line 06
                labels[neighbors] = cluster_id  # line 07
                queue = deque(int(x) for x in neighbors if x != i)  # line 08
                self._expand_cluster(
                    queue, cluster_id, labels, engine, segments
                )  # line 09
                cluster_id += 1  # line 10
            else:
                labels[i] = NOISE  # line 12

        # Step 3 (lines 13-16): trajectory-cardinality filter.
        clusters = clusters_from_labels(labels, segments)
        clusters, removed = filter_by_trajectory_cardinality(
            clusters, self.cardinality_threshold
        )
        for cluster in removed:
            labels[cluster.member_indices] = NOISE
        # Renumber the survivors densely (and rewrite labels to match).
        renumbered: List[Cluster] = []
        for new_id, cluster in enumerate(clusters):
            labels[cluster.member_indices] = new_id
            renumbered.append(
                Cluster(new_id, cluster.member_indices, segments)
            )
        return renumbered, labels

    def _expand_cluster(
        self,
        queue: "deque[int]",
        cluster_id: int,
        labels: np.ndarray,
        engine: NeighborhoodEngine,
        segments: SegmentSet,
    ) -> None:
        """ExpandCluster (Figure 12 lines 17-28): BFS over directly
        density-reachable segments."""
        while queue:  # line 18
            m = queue.popleft()  # lines 19, 27
            neighbors = engine.neighbors_of(m)  # line 20
            if self._cardinality(neighbors, segments) < self.min_lns:  # line 21
                continue
            for x in neighbors:  # line 22
                if labels[x] == UNCLASSIFIED or labels[x] == NOISE:  # line 23
                    was_unclassified = labels[x] == UNCLASSIFIED
                    labels[x] = cluster_id  # line 24
                    if was_unclassified:  # line 25
                        queue.append(int(x))  # line 26

    def __repr__(self) -> str:
        return (
            f"LineSegmentDBSCAN(eps={self.eps}, min_lns={self.min_lns}, "
            f"use_weights={self.use_weights})"
        )


def cluster_segments(
    segments: SegmentSet,
    eps: float,
    min_lns: float,
    distance: Optional[SegmentDistance] = None,
    cardinality_threshold: Optional[float] = None,
    use_weights: bool = False,
    neighborhood_method: str = "auto",
) -> Tuple[List[Cluster], np.ndarray]:
    """Functional facade over :class:`LineSegmentDBSCAN`."""
    algorithm = LineSegmentDBSCAN(
        eps=eps,
        min_lns=min_lns,
        distance=distance,
        cardinality_threshold=cardinality_threshold,
        use_weights=use_weights,
        neighborhood_method=neighborhood_method,
    )
    return algorithm.fit(segments)
