"""OPTICS over line segments (Appendix D).

The paper chose DBSCAN over OPTICS and Appendix D explains why: with
line segments, pairwise distances inside an ε-neighborhood are *not*
bounded by 2ε (the distance is not a metric), so reachability
distances sit close to ε and clusters become hard to tell from noise
on the reachability plot.  This module implements segment-OPTICS so
that claim can be measured (see ``benchmarks/bench_appendix_optics.py``).

The algorithm is the standard OPTICS [Ankerst et al. 1999] with the
point distance replaced by the TRACLUS segment distance:

* core-distance(o) = distance to the MinLns-th nearest segment if
  ``|N_eps(o)| >= MinLns`` else undefined;
* reachability(p from o) = max(core-distance(o), dist(o, p)).
"""

from __future__ import annotations

import heapq
import math
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.cluster.neighbor_graph import NeighborGraph
from repro.cluster.neighborhood import NEIGHBORHOOD_METHODS
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.model.cluster import NOISE
from repro.model.segmentset import SegmentSet

#: Reachability value for points never reached within eps.
UNDEFINED = math.inf


class OpticsResult(NamedTuple):
    """Output of one OPTICS run.

    ``ordering`` is the visit order; ``reachability`` and
    ``core_distance`` are aligned with *segment indices* (not with the
    ordering).
    """

    ordering: np.ndarray
    reachability: np.ndarray
    core_distance: np.ndarray

    def reachability_in_order(self) -> np.ndarray:
        """The reachability plot: reachability along the ordering."""
        return self.reachability[self.ordering]

    def extract_hierarchy(
        self, eps_levels: "Sequence[float]", min_lns: int
    ) -> np.ndarray:
        """Flat labellings at several ``eps' <= eps`` thresholds at once.

        One OPTICS run replaces a whole family of DBSCAN runs — the
        "parameter insensitivity" motivation of Section 7.1 item 2.
        Returns an ``(n_levels, n_segments)`` int array (row k is
        ``extract_dbscan(eps_levels[k], min_lns)``); coarser levels
        merge or absorb the clusters of finer ones.
        """
        return np.vstack(
            [self.extract_dbscan(float(e), min_lns) for e in eps_levels]
        )

    def extract_dbscan(self, eps_prime: float, min_lns: int) -> np.ndarray:
        """Extract a DBSCAN-like flat labelling at ``eps_prime <= eps``
        from the ordering (Ankerst et al., Section 4.2 ExtractDBSCAN).
        Returns int labels (>= 0 cluster id, -1 noise)."""
        labels = np.full(self.ordering.size, NOISE, dtype=np.int64)
        cluster_id = -1
        for idx in self.ordering:
            if self.reachability[idx] > eps_prime:
                if self.core_distance[idx] <= eps_prime:
                    cluster_id += 1
                    labels[idx] = cluster_id
                # else: noise (stays -1)
            else:
                if cluster_id >= 0:
                    labels[idx] = cluster_id
        return labels


class LineSegmentOPTICS:
    """OPTICS with the TRACLUS segment distance.

    Parameters mirror :class:`~repro.cluster.dbscan.LineSegmentDBSCAN`;
    ``eps`` is the *generating* radius bounding the neighborhoods.

    ``neighborhood_method`` selects how the per-segment neighborhoods
    (and their distances) are obtained: ``"auto"``/``"batch"`` build one
    :class:`~repro.cluster.neighbor_graph.NeighborGraph` and read CSR
    rows; ``"brute"``, ``"grid"``, and ``"rtree"`` run the
    one-vectorized-pass-per-segment loop, which never materializes the
    O(E) edge list (OPTICS needs the distances, not just the indices,
    so the per-query index engines have nothing to prune here — the
    names are accepted as the memory-capped escape hatch).  All routes
    share one distance kernel, so the reachability plot is identical
    either way.
    """

    def __init__(
        self,
        eps: float,
        min_lns: int,
        distance: Optional[SegmentDistance] = None,
        neighborhood_method: str = "auto",
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if min_lns < 1:
            raise ClusteringError(f"min_lns must be >= 1, got {min_lns}")
        if neighborhood_method not in NEIGHBORHOOD_METHODS:
            raise ClusteringError(
                f"unknown neighborhood method {neighborhood_method!r}; "
                f"expected one of {NEIGHBORHOOD_METHODS}"
            )
        self.eps = float(eps)
        self.min_lns = int(min_lns)
        self.distance = distance if distance is not None else SegmentDistance()
        self.neighborhood_method = neighborhood_method

    def fit(
        self,
        segments: SegmentSet,
        graph: Optional["NeighborGraph"] = None,
    ) -> OpticsResult:
        """Compute the cluster ordering.  A prebuilt *graph* (at this
        ``eps`` or wider) short-circuits the neighborhood pass."""
        n = len(segments)
        reachability = np.full(n, UNDEFINED)
        core_distance = np.full(n, UNDEFINED)
        processed = np.zeros(n, dtype=bool)
        ordering: List[int] = []

        # Precompute neighborhoods, their distances, and core distances —
        # from the shared batched graph, or one vectorized pass per
        # segment under the legacy brute route.
        neighbor_lists: List[np.ndarray] = []
        neighbor_dists: List[np.ndarray] = []
        if (
            graph is None
            and self.neighborhood_method in ("auto", "batch")
            and n > 0
        ):
            graph = NeighborGraph.build(segments, self.eps, self.distance)
        elif graph is not None and graph.eps != self.eps:
            # restrict() raises if the graph is narrower than self.eps —
            # a too-small graph would silently truncate neighborhoods.
            graph = graph.restrict(self.eps)
        if graph is not None:
            if graph.n_segments != n:
                raise ClusteringError(
                    f"graph covers {graph.n_segments} segments but the set "
                    f"has {n}"
                )
            for i in range(n):
                neighbor_lists.append(graph.row(i))
                neighbor_dists.append(graph.row_distances(i))
        else:
            for i in range(n):
                dists = self.distance.member_to_all(i, segments)
                mask = dists <= self.eps
                neighbor_lists.append(np.nonzero(mask)[0])
                neighbor_dists.append(dists[mask])
        for i in range(n):
            if neighbor_lists[i].size >= self.min_lns:
                core_distance[i] = float(
                    np.partition(
                        neighbor_dists[i], self.min_lns - 1
                    )[self.min_lns - 1]
                )

        counter = 0
        for start in range(n):
            if processed[start]:
                continue
            processed[start] = True
            ordering.append(start)
            if math.isinf(core_distance[start]):
                continue
            heap: List[tuple] = []
            counter = self._update(
                start, neighbor_lists, neighbor_dists, core_distance,
                reachability, processed, heap, counter,
            )
            while heap:
                _, _, current = heapq.heappop(heap)
                if processed[current]:
                    continue
                processed[current] = True
                ordering.append(current)
                if not math.isinf(core_distance[current]):
                    counter = self._update(
                        current, neighbor_lists, neighbor_dists, core_distance,
                        reachability, processed, heap, counter,
                    )

        return OpticsResult(
            ordering=np.asarray(ordering, dtype=np.int64),
            reachability=reachability,
            core_distance=core_distance,
        )

    @staticmethod
    def _update(
        center: int,
        neighbor_lists: List[np.ndarray],
        neighbor_dists: List[np.ndarray],
        core_distance: np.ndarray,
        reachability: np.ndarray,
        processed: np.ndarray,
        heap: List[tuple],
        counter: int,
    ) -> int:
        """OPTICS update(): refresh reachability of unprocessed neighbors."""
        core = core_distance[center]
        for neighbor, dist in zip(neighbor_lists[center], neighbor_dists[center]):
            if processed[neighbor]:
                continue
            new_reach = max(core, float(dist))
            if new_reach < reachability[neighbor]:
                reachability[neighbor] = new_reach
                counter += 1
                heapq.heappush(heap, (new_reach, counter, int(neighbor)))
        return counter
