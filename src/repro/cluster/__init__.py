"""The grouping phase (Section 4): density-based clustering of line
segments, the trajectory-cardinality filter, and the OPTICS extension
discussed in Appendix D.
"""

from repro.cluster.neighborhood import (
    NEIGHBORHOOD_METHODS,
    BruteForceNeighborhood,
    GridNeighborhood,
    NeighborhoodEngine,
    RTreeNeighborhood,
    make_neighborhood_engine,
)
from repro.cluster.neighbor_graph import (
    NeighborGraph,
    PrecomputedNeighborhood,
    neighborhood_size_counts,
)
from repro.cluster.dbscan import LineSegmentDBSCAN, cluster_segments
from repro.cluster.cardinality import filter_by_trajectory_cardinality
from repro.cluster.optics import LineSegmentOPTICS, OpticsResult

__all__ = [
    "NEIGHBORHOOD_METHODS",
    "BruteForceNeighborhood",
    "GridNeighborhood",
    "NeighborhoodEngine",
    "RTreeNeighborhood",
    "NeighborGraph",
    "PrecomputedNeighborhood",
    "neighborhood_size_counts",
    "make_neighborhood_engine",
    "LineSegmentDBSCAN",
    "cluster_segments",
    "filter_by_trajectory_cardinality",
    "LineSegmentOPTICS",
    "OpticsResult",
]
