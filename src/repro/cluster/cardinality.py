"""The trajectory-cardinality filter (Figure 12 Step 3, Definition 10).

A density-connected set whose members all come from one (or a few)
trajectories does not describe common behavior across the database —
e.g. a single animal circling the same meadow produces a dense blob of
its own segments.  Clusters with ``|PTR(C)| < threshold`` are removed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import ClusteringError
from repro.model.cluster import Cluster


def filter_by_trajectory_cardinality(
    clusters: Sequence[Cluster], threshold: float
) -> Tuple[List[Cluster], List[Cluster]]:
    """Split *clusters* into (kept, removed) by trajectory cardinality.

    A cluster is kept iff ``|PTR(C)| >= threshold`` (Figure 12 line 15
    removes those strictly below the threshold).
    """
    if threshold < 0:
        raise ClusteringError(f"threshold must be non-negative, got {threshold}")
    kept: List[Cluster] = []
    removed: List[Cluster] = []
    for cluster in clusters:
        if cluster.trajectory_cardinality() >= threshold:
            kept.append(cluster)
        else:
            removed.append(cluster)
    return kept, removed
