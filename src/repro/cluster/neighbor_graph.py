"""Batched ε-neighborhood graph (the whole of Definition 4 at once).

The per-query engines in :mod:`repro.cluster.neighborhood` answer
``N_eps(L_i)`` one segment at a time, so every consumer — DBSCAN
(Figure 12), OPTICS (Appendix D), the entropy heuristic (Formula 10) —
pays n sequential round-trips through Python.  This module instead
materializes the *entire* ε-neighborhood relation in one pass:

1. **Candidate generation** — a :class:`~repro.index.grid.SegmentGrid`
   buckets segment bounding boxes; each segment's window (expanded by
   the candidate radius of the module docstring of
   :mod:`repro.cluster.neighborhood`) yields a superset of its true
   neighbors.  Only unordered pairs ``i < j`` are kept: the distance is
   bitwise symmetric (see below), so each pair is evaluated once.
   When either distance weight is zero the geometric prefilter is
   unsound, and the builder falls back to enumerating all ``i < j``
   pairs — still exact, still blocked, like the grid engine's
   documented brute-force degradation.
2. **Blocked join** — candidate pairs accumulate into fixed-size blocks
   (``pair_block`` pairs) that are evaluated by the many-pairs kernel
   :func:`repro.distance.vectorized.component_distances_pairs` and
   filtered against ε immediately.  **Memory bound:** peak usage is
   ``O(pair_block)`` scratch for the kernel (a handful of float64
   arrays per block, ~20 MB at the default block of 2**18 pairs) plus
   ``O(E)`` for the surviving edges — never ``O(candidates)``, however
   many candidate pairs the grid emits.
3. **Symmetrization** — surviving pairs are mirrored into both rows,
   the diagonal is added (``dist(L, L) = 0`` by definition), and the
   whole relation is packed into CSR ``(indptr, indices, data)``
   arrays with ascending column indices per row.

Because the pairs kernel shares one arithmetic path with the per-query
kernels (they are literally the same function), a CSR row is *bitwise
identical* to ``BruteForceNeighborhood.neighbors_of(i)`` — the property
tests in ``tests/property/test_engine_equivalence.py`` assert exactly
that, and :class:`PrecomputedNeighborhood` can therefore stand in for
any engine while serving queries as O(1) slices.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.index.grid import SegmentGrid
from repro.model.segmentset import SegmentSet

#: Default number of candidate pairs per kernel block (bounds peak
#: scratch memory of the blocked join at roughly 20 MB).
DEFAULT_PAIR_BLOCK = 1 << 18

#: Geometric gaps below ~sqrt(5e-324) square to exactly 0.0 inside the
#: distance kernel, so a pair with a *positive* gap can still compute
#: ``dist == 0 <= eps``.  At ``eps = 0`` the nominal candidate radius is
#: 0 and an exact bbox prefilter would prune such a pair; flooring the
#: radius just above the underflow scale keeps every prefilter engine
#: sound (and is far below any representable coordinate difference that
#: survives squaring).
SUBNORMAL_RADIUS_GUARD = 1e-150


def candidate_radius(eps: float, distance: SegmentDistance) -> float:
    """Euclidean bbox-expansion radius that cannot miss an ε-neighbor
    (soundness argument: module docstring of
    :mod:`repro.cluster.neighborhood`).  Requires positive ``w_perp``
    and ``w_par``."""
    return max(
        math.sqrt(
            (2.0 * eps / distance.w_perp) ** 2 + (eps / distance.w_par) ** 2
        ),
        SUBNORMAL_RADIUS_GUARD,
    )


def _candidate_pair_stream(
    segments: SegmentSet,
    eps: float,
    distance: SegmentDistance,
    cell_size: Optional[float],
    pair_block: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(left, right)`` blocks of candidate pairs, ``left < right``
    row-wise, each block at most ``pair_block`` pairs.

    Every pair within distance ε appears in exactly one block (the grid
    prefilter is a superset; duplicates cannot occur because pair
    ``(i, j)`` is only emitted from ``i``'s window).
    """
    n = len(segments)
    prefilter = distance.w_perp > 0 and distance.w_par > 0
    if prefilter:
        radius = candidate_radius(eps, distance)
        grid = SegmentGrid(
            segments, cell_size=cell_size if cell_size else max(radius, 1e-9)
        )
    pending_left: List[np.ndarray] = []
    pending_right: List[np.ndarray] = []
    pending = 0
    for i in range(n):
        if prefilter:
            mates = grid.candidates_near(i, radius)
            mates = mates[mates > i]
        else:
            mates = np.arange(i + 1, n, dtype=np.int64)
        if mates.size == 0:
            continue
        pending_left.append(np.full(mates.size, i, dtype=np.int64))
        pending_right.append(mates)
        pending += mates.size
        if pending >= pair_block:
            left = np.concatenate(pending_left)
            right = np.concatenate(pending_right)
            for lo in range(0, left.size, pair_block):
                yield left[lo:lo + pair_block], right[lo:lo + pair_block]
            pending_left, pending_right, pending = [], [], 0
    if pending:
        yield np.concatenate(pending_left), np.concatenate(pending_right)


class NeighborGraph:
    """The full ε-neighborhood relation as a CSR adjacency.

    Attributes
    ----------
    indptr:
        ``(n + 1,)`` int64; row *i* occupies ``indptr[i]:indptr[i+1]``.
    indices:
        Column indices (neighbor segment ids), ascending within each
        row; every row contains its own index (``dist(L, L) = 0``).
    data:
        The exact TRACLUS distances aligned with ``indices`` (0.0 on
        the diagonal) — OPTICS reads these instead of re-deriving them.
    """

    __slots__ = ("eps", "distance", "indptr", "indices", "data")

    def __init__(
        self,
        eps: float,
        distance: SegmentDistance,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        self.eps = float(eps)
        self.distance = distance
        self.indptr = indptr
        self.indices = indices
        self.data = data
        for array in (self.indptr, self.indices, self.data):
            array.setflags(write=False)

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        cell_size: Optional[float] = None,
        pair_block: int = DEFAULT_PAIR_BLOCK,
    ) -> "NeighborGraph":
        """Compute the whole ε-neighborhood relation in one blocked pass."""
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if pair_block < 1:
            raise ClusteringError(f"pair_block must be >= 1, got {pair_block}")
        distance = distance if distance is not None else SegmentDistance()
        n = len(segments)
        eps = float(eps)

        kept_left: List[np.ndarray] = []
        kept_right: List[np.ndarray] = []
        kept_dist: List[np.ndarray] = []
        for left, right in _candidate_pair_stream(
            segments, eps, distance, cell_size, pair_block
        ):
            dists = distance.pairs(segments, left, right)
            mask = dists <= eps
            if np.any(mask):
                kept_left.append(left[mask])
                kept_right.append(right[mask])
                kept_dist.append(dists[mask])

        diagonal = np.arange(n, dtype=np.int64)
        if kept_left:
            el = np.concatenate(kept_left)
            er = np.concatenate(kept_right)
            ed = np.concatenate(kept_dist)
            rows = np.concatenate([el, er, diagonal])
            cols = np.concatenate([er, el, diagonal])
            vals = np.concatenate([ed, ed, np.zeros(n, dtype=np.float64)])
        else:
            rows = diagonal
            cols = diagonal.copy()
            vals = np.zeros(n, dtype=np.float64)
        order = np.lexsort((cols, rows))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return cls(eps, distance, indptr, cols[order], vals[order])

    # -- derived graphs ----------------------------------------------------
    def restrict(self, eps: float) -> "NeighborGraph":
        """The neighbor graph at a smaller radius ``eps <= self.eps``,
        extracted by filtering the stored distances (no re-evaluation)."""
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if eps > self.eps:
            raise ClusteringError(
                f"cannot restrict a graph built at eps={self.eps} to the "
                f"larger radius {eps}; rebuild instead"
            )
        mask = self.data <= eps
        n = self.n_segments
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[mask], minlength=n), out=indptr[1:])
        return NeighborGraph(
            eps, self.distance, indptr,
            self.indices[mask].copy(), self.data[mask].copy(),
        )

    # -- queries -----------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def n_edges(self) -> int:
        """Stored entries, diagonal included (each symmetric pair twice)."""
        return int(self.indices.shape[0])

    def row(self, index: int) -> np.ndarray:
        """``N_eps`` of segment *index* as an ascending read-only slice."""
        if not 0 <= index < self.n_segments:
            raise ClusteringError(
                f"segment index {index} out of range 0..{self.n_segments - 1}"
            )
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def row_distances(self, index: int) -> np.ndarray:
        """Distances aligned with :meth:`row`."""
        if not 0 <= index < self.n_segments:
            raise ClusteringError(
                f"segment index {index} out of range 0..{self.n_segments - 1}"
            )
        return self.data[self.indptr[index]:self.indptr[index + 1]]

    def sizes(self) -> np.ndarray:
        """``|N_eps(L)|`` for every segment — one O(n) diff, no queries."""
        return np.diff(self.indptr)

    def __repr__(self) -> str:
        return (
            f"NeighborGraph(n_segments={self.n_segments}, "
            f"n_edges={self.n_edges}, eps={self.eps})"
        )


class PrecomputedNeighborhood:
    """Neighborhood engine backed by a :class:`NeighborGraph`.

    Satisfies the :class:`~repro.cluster.neighborhood.NeighborhoodEngine`
    protocol: :meth:`neighbors_of` is an O(1) CSR slice and
    :meth:`neighborhood_sizes` a single ``diff`` — the whole cost was
    paid once, up front, by the blocked builder.
    """

    def __init__(
        self,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        graph: Optional[NeighborGraph] = None,
        pair_block: int = DEFAULT_PAIR_BLOCK,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        self.segments = segments
        self.eps = float(eps)
        self.distance = distance if distance is not None else SegmentDistance()
        if graph is None:
            graph = NeighborGraph.build(
                segments, self.eps, self.distance, pair_block=pair_block
            )
        elif len(segments) != graph.n_segments:
            raise ClusteringError(
                f"graph covers {graph.n_segments} segments but the set has "
                f"{len(segments)}"
            )
        elif graph.eps != self.eps:
            graph = graph.restrict(self.eps)
        self.graph = graph

    def neighbors_of(self, index: int) -> np.ndarray:
        return self.graph.row(index)

    def neighborhood_sizes(self) -> np.ndarray:
        return self.graph.sizes()

    def __repr__(self) -> str:
        return f"PrecomputedNeighborhood(eps={self.eps}, graph={self.graph!r})"


def neighborhood_size_counts(
    segments: SegmentSet,
    eps_values: Union[Sequence[float], np.ndarray],
    distance: Optional[SegmentDistance] = None,
    pair_block: int = DEFAULT_PAIR_BLOCK,
) -> np.ndarray:
    """``|N_eps(L_i)|`` for every ε in *eps_values* and every segment,
    without materializing any graph.

    The blocked candidate stream is run once at ``max(eps_values)``;
    each surviving pair is binned to the smallest threshold that admits
    it (one ``searchsorted``) and a suffix cumulative sum turns the bins
    into per-threshold counts.  Peak memory is ``O(pair_block + k * n)``
    — the Figure 16/19 entropy sweeps never hold an edge list.

    Returns an ``(n_eps, n_segments)`` int64 array identical to
    thresholding per-query brute-force distance rows.
    """
    distance = distance if distance is not None else SegmentDistance()
    eps_array = np.asarray(eps_values, dtype=np.float64)
    if eps_array.ndim != 1 or eps_array.size == 0:
        raise ClusteringError("eps_values must be a non-empty 1-D sequence")
    if np.any(eps_array < 0):
        raise ClusteringError("eps values must be non-negative")
    n = len(segments)
    k = eps_array.size
    sort_order = np.argsort(eps_array, kind="stable")
    sorted_eps = eps_array[sort_order]
    eps_max = float(sorted_eps[-1])

    # binned[t, i]: neighbors of i first admitted at sorted threshold t.
    binned = np.zeros((k, n), dtype=np.int64)
    for left, right in _candidate_pair_stream(
        segments, eps_max, distance, None, pair_block
    ):
        dists = distance.pairs(segments, left, right)
        mask = dists <= eps_max
        if not np.any(mask):
            continue
        bins = np.searchsorted(sorted_eps, dists[mask], side="left")
        flat_l = bins * n + left[mask]
        flat_r = bins * n + right[mask]
        binned += np.bincount(flat_l, minlength=k * n).reshape(k, n)
        binned += np.bincount(flat_r, minlength=k * n).reshape(k, n)
    counts_sorted = np.cumsum(binned, axis=0)
    counts_sorted += 1  # every segment neighbors itself at any eps >= 0
    counts = np.empty_like(counts_sorted)
    counts[sort_order] = counts_sorted
    return counts
