"""Batched ε-neighborhood graph (the whole of Definition 4 at once).

The per-query engines in :mod:`repro.cluster.neighborhood` answer
``N_eps(L_i)`` one segment at a time, so every consumer — DBSCAN
(Figure 12), OPTICS (Appendix D), the entropy heuristic (Formula 10) —
pays n sequential round-trips through Python.  This module instead
materializes the *entire* ε-neighborhood relation in one pass:

1. **Candidate generation** — a :class:`~repro.index.grid.SegmentGrid`
   buckets segment bounding boxes; each segment's window (expanded by
   the candidate radius of the module docstring of
   :mod:`repro.cluster.neighborhood`) yields a superset of its true
   neighbors.  Only unordered pairs ``i < j`` are kept: the distance is
   bitwise symmetric (see below), so each pair is evaluated once.
   When either distance weight is zero the geometric prefilter is
   unsound, and the builder falls back to enumerating all ``i < j``
   pairs — still exact, still blocked, like the grid engine's
   documented brute-force degradation.
2. **Blocked join** — candidate pairs accumulate into fixed-size blocks
   (``pair_block`` pairs) that are evaluated by the many-pairs kernel
   :func:`repro.distance.vectorized.component_distances_pairs` and
   filtered against ε immediately.  **Memory bound:** peak usage is
   ``O(pair_block)`` scratch for the kernel (a handful of float64
   arrays per block, ~20 MB at the default block of 2**18 pairs) plus
   ``O(E)`` for the surviving edges — never ``O(candidates)``, however
   many candidate pairs the grid emits.
3. **Symmetrization** — surviving pairs are mirrored into both rows,
   the diagonal is added (``dist(L, L) = 0`` by definition), and the
   whole relation is packed into CSR ``(indptr, indices, data)``
   arrays with ascending column indices per row.

Because the pairs kernel shares one arithmetic path with the per-query
kernels (they are literally the same function), a CSR row is *bitwise
identical* to ``BruteForceNeighborhood.neighbors_of(i)`` — the property
tests in ``tests/property/test_engine_equivalence.py`` assert exactly
that, and :class:`PrecomputedNeighborhood` can therefore stand in for
any engine while serving queries as O(1) slices.
"""

from __future__ import annotations

import math
import os
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.index.grid import SegmentGrid
from repro.model.segmentset import SegmentSet

#: Default number of candidate pairs per kernel block (bounds peak
#: scratch memory of the blocked join at roughly 20 MB).
DEFAULT_PAIR_BLOCK = 1 << 18


def _join_threads() -> int:
    """Worker-thread count for the blocked join when the active kernel
    backend releases the GIL (``REPRO_KERNEL_THREADS`` overrides; 0/1
    disables threading)."""
    env = os.environ.get("REPRO_KERNEL_THREADS")
    if env is not None:
        try:
            return max(int(env), 0)
        except ValueError:
            return 1
    return min(os.cpu_count() or 1, 8)


def _map_pair_blocks(
    stream: Iterator[Tuple[np.ndarray, np.ndarray]],
    evaluate: Callable[[np.ndarray, np.ndarray], object],
) -> Iterator[object]:
    """Apply *evaluate* to every candidate block, threading across
    blocks when the active compiled backend drops the GIL.

    Results are yielded in **submission order**, so consumers see the
    exact sequence the sequential loop would produce, and the number of
    in-flight blocks is bounded (workers + 2) to preserve the blocked
    join's O(pair_block) scratch-memory guarantee.  The resolved
    backend is pinned into each worker thread (``use_backend`` is
    thread-local) so workers cannot re-resolve differently.
    """
    from repro import kernels

    backend = kernels.active_backend()
    workers = _join_threads() if backend is not None and backend.nogil else 0
    if workers <= 1:
        for left, right in stream:
            yield evaluate(left, right)
        return

    name = backend.name

    def pinned(left: np.ndarray, right: np.ndarray) -> object:
        with kernels.use_backend(name):
            return evaluate(left, right)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        in_flight: deque = deque()
        for left, right in stream:
            in_flight.append(pool.submit(pinned, left, right))
            if len(in_flight) > workers + 2:
                yield in_flight.popleft().result()
        while in_flight:
            yield in_flight.popleft().result()

#: Geometric gaps below ~sqrt(5e-324) square to exactly 0.0 inside the
#: distance kernel, so a pair with a *positive* gap can still compute
#: ``dist == 0 <= eps``.  At ``eps = 0`` the nominal candidate radius is
#: 0 and an exact bbox prefilter would prune such a pair; flooring the
#: radius just above the underflow scale keeps every prefilter engine
#: sound (and is far below any representable coordinate difference that
#: survives squaring).
SUBNORMAL_RADIUS_GUARD = 1e-150


def candidate_radius(eps: float, distance: SegmentDistance) -> float:
    """Euclidean bbox-expansion radius that cannot miss an ε-neighbor
    (soundness argument: module docstring of
    :mod:`repro.cluster.neighborhood`).  Requires positive ``w_perp``
    and ``w_par``."""
    return max(
        math.sqrt(
            (2.0 * eps / distance.w_perp) ** 2 + (eps / distance.w_par) ** 2
        ),
        SUBNORMAL_RADIUS_GUARD,
    )


#: Mirrors ``SegmentGrid(max_cells_per_segment=...)``: segments whose
#: bbox covers more cells go to the always-candidate oversize list.
_MAX_CELLS_PER_SEGMENT = 1024

#: Mirrors the grid engine's big-window escape hatch: query windows
#: covering more cells than this scan the registration ranges directly.
_HUGE_WINDOW_CELLS = 16 * _MAX_CELLS_PER_SEGMENT

#: Window cells enumerated per vectorized chunk (bounds the scratch of
#: the cell-key join).
_CELL_CHUNK_BUDGET = 1 << 16


def _suffix_products(spans: np.ndarray) -> np.ndarray:
    """Row-wise mixed-radix strides: ``strides[:, k] = prod(spans[:, k+1:])``."""
    strides = np.ones_like(spans)
    for k in range(spans.shape[1] - 2, -1, -1):
        strides[:, k] = strides[:, k + 1] * spans[:, k + 1]
    return strides


def _enumerate_cells(
    lo_cells: np.ndarray, spans: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand row-wise integer cell ranges into ``(owner_row, coords)``
    arrays: every cell of row ``r``'s box appears once, owner-major."""
    total = int(counts.sum())
    owners = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    strides = _suffix_products(spans)
    coords = lo_cells[owners] + (
        offsets[:, None] // strides[owners]
    ) % spans[owners]
    return owners, coords


def _vector_candidate_stream(
    segments: SegmentSet,
    eps: float,
    distance: SegmentDistance,
    cell_size: Optional[float],
    pair_block: int,
) -> Optional[Iterator[Tuple[np.ndarray, np.ndarray]]]:
    """Vectorized per-cell candidate generation.

    Emits the same candidate pairs as the per-query grid walk (same
    cell layout, same oversize and big-window rules) without a Python
    loop over segments: registration cells and query windows are
    enumerated with mixed-radix array arithmetic, candidates come from
    one ``searchsorted`` join against the sorted cell keys, and each
    unordered pair is *owned by its smaller id* (only ``candidate >
    query`` survives), so a pair can never be emitted from two chunks.
    Peak scratch is bounded by chunking both the cell enumeration
    (:data:`_CELL_CHUNK_BUDGET` cells) and the member expansion
    (``pair_block`` candidates, split at query boundaries).

    Returns ``None`` when the cell coordinates cannot be packed into
    int64 keys (gigantic extent/cell-size ratios); the caller then
    falls back to the per-query grid walk.
    """
    n = len(segments)
    if n < 2:
        return iter(())
    radius = candidate_radius(eps, distance)
    cs = float(cell_size) if cell_size else max(radius, 1e-9)
    box_lo = np.minimum(segments.starts, segments.ends)
    box_hi = np.maximum(segments.starts, segments.ends)
    origin = box_lo.min(axis=0)
    with np.errstate(over="ignore", invalid="ignore"):
        reg_lo_f = np.floor((box_lo - origin) / cs)
        reg_hi_f = np.floor((box_hi - origin) / cs)
        qry_lo_f = np.floor((box_lo - radius - origin) / cs)
        qry_hi_f = np.floor((box_hi + radius - origin) / cs)
    bound = 2.0**62
    if not (
        np.all(np.isfinite(qry_lo_f))
        and np.all(np.isfinite(qry_hi_f))
        and float(np.abs(qry_lo_f).max()) < bound
        and float(np.abs(qry_hi_f).max()) < bound
    ):
        return None
    glo = qry_lo_f.min(axis=0).astype(np.int64)
    ghi = qry_hi_f.max(axis=0).astype(np.int64)
    extents = ghi - glo + 1
    if float(np.prod(extents.astype(np.float64))) >= bound:
        return None
    radix = np.ones(extents.shape[0], dtype=np.int64)
    for k in range(extents.shape[0] - 2, -1, -1):
        radix[k] = radix[k + 1] * extents[k + 1]

    reg_lo = reg_lo_f.astype(np.int64)
    reg_hi = reg_hi_f.astype(np.int64)
    qry_lo = qry_lo_f.astype(np.int64)
    qry_hi = qry_hi_f.astype(np.int64)

    def encode(coords: np.ndarray) -> np.ndarray:
        return (coords - glo) @ radix

    def generate() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        # --- registration: sorted cell keys with member groups --------
        reg_spans = reg_hi - reg_lo + 1
        reg_cells = np.prod(reg_spans.astype(np.float64), axis=1)
        oversize_mask = reg_cells > _MAX_CELLS_PER_SEGMENT
        oversize = np.flatnonzero(oversize_mask)
        registered = np.flatnonzero(~oversize_mask)
        if registered.size:
            counts = np.prod(reg_spans[registered], axis=1)
            owners, coords = _enumerate_cells(
                reg_lo[registered], reg_spans[registered], counts
            )
            keys = encode(coords)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            members = registered[owners[order]]
            unique_keys, group_start = np.unique(
                sorted_keys, return_index=True
            )
            group_count = np.diff(
                np.append(group_start, sorted_keys.size)
            )
        else:
            members = np.empty(0, dtype=np.int64)
            unique_keys = np.empty(0, dtype=np.int64)
            group_start = np.empty(0, dtype=np.int64)
            group_count = np.empty(0, dtype=np.int64)

        def emit(
            left: np.ndarray, right: np.ndarray
        ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
            for at in range(0, left.size, pair_block):
                yield left[at:at + pair_block], right[at:at + pair_block]

        # --- huge-window queries: scan registration ranges ------------
        qry_spans = qry_hi - qry_lo + 1
        window_cells = np.prod(qry_spans.astype(np.float64), axis=1)
        for i in np.flatnonzero(window_cells > _HUGE_WINDOW_CELLS).tolist():
            hit = np.all(
                (reg_lo <= qry_hi[i]) & (reg_hi >= qry_lo[i]), axis=1
            )
            hit &= ~oversize_mask
            mates = np.union1d(np.flatnonzero(hit), oversize)
            mates = mates[mates > i]
            if mates.size:
                yield from emit(
                    np.full(mates.size, i, dtype=np.int64), mates
                )

        # --- normal queries: chunked cell-key join --------------------
        queries = np.flatnonzero(window_cells <= _HUGE_WINDOW_CELLS)
        if queries.size == 0:
            return
        query_cells = np.prod(qry_spans[queries], axis=1)
        cell_cum = np.cumsum(query_cells)
        start = 0
        while start < queries.size:
            base = cell_cum[start - 1] if start else 0
            stop = int(
                np.searchsorted(cell_cum, base + _CELL_CHUNK_BUDGET, "right")
            )
            stop = min(max(stop, start + 1), queries.size)
            chunk = queries[start:stop]
            counts = query_cells[start:stop]
            rows, coords = _enumerate_cells(
                qry_lo[chunk], qry_spans[chunk], counts
            )
            keys = encode(coords)
            pos = np.searchsorted(unique_keys, keys)
            np.clip(pos, 0, max(unique_keys.size - 1, 0), out=pos)
            matched = (
                unique_keys[pos] == keys
                if unique_keys.size
                else np.zeros(keys.size, dtype=bool)
            )
            match_row = rows[matched]
            match_gid = pos[matched]
            match_count = group_count[match_gid]
            # Split the member expansion at query boundaries so no
            # sub-chunk materializes (much) more than pair_block
            # candidates — the same bound the per-query walk has.
            per_query = np.bincount(
                match_row, weights=match_count, minlength=chunk.size
            ).astype(np.int64) + oversize.size
            expansion_cum = np.cumsum(per_query)
            row_bounds = np.searchsorted(
                match_row, np.arange(chunk.size + 1)
            )
            sub = 0
            while sub < chunk.size:
                base2 = expansion_cum[sub - 1] if sub else 0
                sub_stop = int(
                    np.searchsorted(expansion_cum, base2 + pair_block, "right")
                )
                sub_stop = min(max(sub_stop, sub + 1), chunk.size)
                lo_m, hi_m = row_bounds[sub], row_bounds[sub_stop]
                sub_row = match_row[lo_m:hi_m]
                sub_gid = match_gid[lo_m:hi_m]
                sub_cnt = match_count[lo_m:hi_m]
                expanded = int(sub_cnt.sum())
                if expanded:
                    member_at = (
                        np.arange(expanded, dtype=np.int64)
                        - np.repeat(np.cumsum(sub_cnt) - sub_cnt, sub_cnt)
                        + np.repeat(group_start[sub_gid], sub_cnt)
                    )
                    query_ids = chunk[np.repeat(sub_row, sub_cnt)]
                    candidates = members[member_at]
                else:
                    query_ids = np.empty(0, dtype=np.int64)
                    candidates = np.empty(0, dtype=np.int64)
                if oversize.size:
                    span = chunk[sub:sub_stop]
                    query_ids = np.concatenate(
                        [query_ids, np.repeat(span, oversize.size)]
                    )
                    candidates = np.concatenate(
                        [candidates, np.tile(oversize, span.size)]
                    )
                keep = candidates > query_ids
                if np.any(keep):
                    pair_keys = np.unique(
                        query_ids[keep] * n + candidates[keep]
                    )
                    yield from emit(pair_keys // n, pair_keys % n)
                sub = sub_stop
            start = stop

    return generate()


def _candidate_pair_stream(
    segments: SegmentSet,
    eps: float,
    distance: SegmentDistance,
    cell_size: Optional[float],
    pair_block: int,
    vectorized: Optional[bool] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(left, right)`` blocks of candidate pairs, ``left < right``
    row-wise, each block at most ``pair_block`` pairs.

    Every pair within distance ε appears in exactly one block (the grid
    prefilter is a superset; duplicates cannot occur because a pair is
    only emitted from its smaller member's window).

    ``vectorized`` selects the candidate generator when the geometric
    prefilter applies: ``None`` (default) uses the vectorized cell join
    of :func:`_vector_candidate_stream` and falls back to the per-query
    grid walk when the cell-key space cannot be packed into int64;
    ``False`` forces the grid walk (the pre-vectorization reference,
    kept for benchmarking and as the fallback).
    """
    n = len(segments)
    prefilter = distance.w_perp > 0 and distance.w_par > 0
    if prefilter and vectorized is not False:
        stream = _vector_candidate_stream(
            segments, eps, distance, cell_size, pair_block
        )
        if stream is not None:
            yield from stream
            return
    if prefilter:
        radius = candidate_radius(eps, distance)
        grid = SegmentGrid(
            segments, cell_size=cell_size if cell_size else max(radius, 1e-9)
        )
    pending_left: List[np.ndarray] = []
    pending_right: List[np.ndarray] = []
    pending = 0
    for i in range(n):
        if prefilter:
            mates = grid.candidates_near(i, radius)
            mates = mates[mates > i]
        else:
            mates = np.arange(i + 1, n, dtype=np.int64)
        if mates.size == 0:
            continue
        pending_left.append(np.full(mates.size, i, dtype=np.int64))
        pending_right.append(mates)
        pending += mates.size
        if pending >= pair_block:
            left = np.concatenate(pending_left)
            right = np.concatenate(pending_right)
            for lo in range(0, left.size, pair_block):
                yield left[lo:lo + pair_block], right[lo:lo + pair_block]
            pending_left, pending_right, pending = [], [], 0
    if pending:
        yield np.concatenate(pending_left), np.concatenate(pending_right)


class NeighborGraph:
    """The full ε-neighborhood relation as a CSR adjacency.

    Attributes
    ----------
    indptr:
        ``(n + 1,)`` int64; row *i* occupies ``indptr[i]:indptr[i+1]``.
    indices:
        Column indices (neighbor segment ids), ascending within each
        row; every row contains its own index (``dist(L, L) = 0``).
    data:
        The exact TRACLUS distances aligned with ``indices`` (0.0 on
        the diagonal) — OPTICS reads these instead of re-deriving them.
    """

    __slots__ = ("eps", "distance", "indptr", "indices", "data")

    def __init__(
        self,
        eps: float,
        distance: SegmentDistance,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        self.eps = float(eps)
        self.distance = distance
        self.indptr = indptr
        self.indices = indices
        self.data = data
        for array in (self.indptr, self.indices, self.data):
            array.setflags(write=False)

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        cell_size: Optional[float] = None,
        pair_block: int = DEFAULT_PAIR_BLOCK,
        vectorized_candidates: Optional[bool] = None,
    ) -> "NeighborGraph":
        """Compute the whole ε-neighborhood relation in one blocked pass.

        ``vectorized_candidates`` forwards to
        :func:`_candidate_pair_stream` (``False`` forces the per-query
        grid walk; the default auto-selects the vectorized cell join).
        """
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if pair_block < 1:
            raise ClusteringError(f"pair_block must be >= 1, got {pair_block}")
        distance = distance if distance is not None else SegmentDistance()
        n = len(segments)
        eps = float(eps)

        def evaluate(left: np.ndarray, right: np.ndarray):
            dists = distance.pairs(segments, left, right)
            mask = dists <= eps
            if not np.any(mask):
                return None
            return left[mask], right[mask], dists[mask]

        kept_left: List[np.ndarray] = []
        kept_right: List[np.ndarray] = []
        kept_dist: List[np.ndarray] = []
        stream = _candidate_pair_stream(
            segments, eps, distance, cell_size, pair_block,
            vectorized=vectorized_candidates,
        )
        for kept in _map_pair_blocks(stream, evaluate):
            if kept is not None:
                kept_left.append(kept[0])
                kept_right.append(kept[1])
                kept_dist.append(kept[2])

        diagonal = np.arange(n, dtype=np.int64)
        if kept_left:
            el = np.concatenate(kept_left)
            er = np.concatenate(kept_right)
            ed = np.concatenate(kept_dist)
            rows = np.concatenate([el, er, diagonal])
            cols = np.concatenate([er, el, diagonal])
            vals = np.concatenate([ed, ed, np.zeros(n, dtype=np.float64)])
        else:
            rows = diagonal
            cols = diagonal.copy()
            vals = np.zeros(n, dtype=np.float64)
        order = np.lexsort((cols, rows))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return cls(eps, distance, indptr, cols[order], vals[order])

    # -- derived graphs ----------------------------------------------------
    def restrict(self, eps: float) -> "NeighborGraph":
        """The neighbor graph at a smaller radius ``eps <= self.eps``,
        extracted by filtering the stored distances (no re-evaluation)."""
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if eps > self.eps:
            raise ClusteringError(
                f"cannot restrict a graph built at eps={self.eps} to the "
                f"larger radius {eps}; rebuild instead"
            )
        mask = self.data <= eps
        n = self.n_segments
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[mask], minlength=n), out=indptr[1:])
        return NeighborGraph(
            eps, self.distance, indptr,
            self.indices[mask].copy(), self.data[mask].copy(),
        )

    # -- queries -----------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def n_edges(self) -> int:
        """Stored entries, diagonal included (each symmetric pair twice)."""
        return int(self.indices.shape[0])

    def row(self, index: int) -> np.ndarray:
        """``N_eps`` of segment *index* as an ascending read-only slice."""
        if not 0 <= index < self.n_segments:
            raise ClusteringError(
                f"segment index {index} out of range 0..{self.n_segments - 1}"
            )
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def row_distances(self, index: int) -> np.ndarray:
        """Distances aligned with :meth:`row`."""
        if not 0 <= index < self.n_segments:
            raise ClusteringError(
                f"segment index {index} out of range 0..{self.n_segments - 1}"
            )
        return self.data[self.indptr[index]:self.indptr[index + 1]]

    def sizes(self) -> np.ndarray:
        """``|N_eps(L)|`` for every segment — one O(n) diff, no queries."""
        return np.diff(self.indptr)

    def __repr__(self) -> str:
        return (
            f"NeighborGraph(n_segments={self.n_segments}, "
            f"n_edges={self.n_edges}, eps={self.eps})"
        )


class PrecomputedNeighborhood:
    """Neighborhood engine backed by a :class:`NeighborGraph`.

    Satisfies the :class:`~repro.cluster.neighborhood.NeighborhoodEngine`
    protocol: :meth:`neighbors_of` is an O(1) CSR slice and
    :meth:`neighborhood_sizes` a single ``diff`` — the whole cost was
    paid once, up front, by the blocked builder.
    """

    def __init__(
        self,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        graph: Optional[NeighborGraph] = None,
        pair_block: int = DEFAULT_PAIR_BLOCK,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        self.segments = segments
        self.eps = float(eps)
        self.distance = distance if distance is not None else SegmentDistance()
        if graph is None:
            graph = NeighborGraph.build(
                segments, self.eps, self.distance, pair_block=pair_block
            )
        elif len(segments) != graph.n_segments:
            raise ClusteringError(
                f"graph covers {graph.n_segments} segments but the set has "
                f"{len(segments)}"
            )
        elif graph.eps != self.eps:
            graph = graph.restrict(self.eps)
        self.graph = graph

    def neighbors_of(self, index: int) -> np.ndarray:
        return self.graph.row(index)

    def neighborhood_sizes(self) -> np.ndarray:
        return self.graph.sizes()

    def __repr__(self) -> str:
        return f"PrecomputedNeighborhood(eps={self.eps}, graph={self.graph!r})"


def neighborhood_size_counts(
    segments: SegmentSet,
    eps_values: Union[Sequence[float], np.ndarray],
    distance: Optional[SegmentDistance] = None,
    pair_block: int = DEFAULT_PAIR_BLOCK,
) -> np.ndarray:
    """``|N_eps(L_i)|`` for every ε in *eps_values* and every segment,
    without materializing any graph.

    The blocked candidate stream is run once at ``max(eps_values)``;
    each surviving pair is binned to the smallest threshold that admits
    it (one ``searchsorted``) and a suffix cumulative sum turns the bins
    into per-threshold counts.  Peak memory is ``O(pair_block + k * n)``
    — the Figure 16/19 entropy sweeps never hold an edge list.

    Returns an ``(n_eps, n_segments)`` int64 array identical to
    thresholding per-query brute-force distance rows.
    """
    distance = distance if distance is not None else SegmentDistance()
    eps_array = np.asarray(eps_values, dtype=np.float64)
    if eps_array.ndim != 1 or eps_array.size == 0:
        raise ClusteringError("eps_values must be a non-empty 1-D sequence")
    if np.any(eps_array < 0):
        raise ClusteringError("eps values must be non-negative")
    n = len(segments)
    k = eps_array.size
    sort_order = np.argsort(eps_array, kind="stable")
    sorted_eps = eps_array[sort_order]
    eps_max = float(sorted_eps[-1])

    def evaluate(left: np.ndarray, right: np.ndarray):
        dists = distance.pairs(segments, left, right)
        mask = dists <= eps_max
        if not np.any(mask):
            return None
        return left[mask], right[mask], dists[mask]

    # binned[t, i]: neighbors of i first admitted at sorted threshold t.
    binned = np.zeros((k, n), dtype=np.int64)
    stream = _candidate_pair_stream(segments, eps_max, distance, None, pair_block)
    for kept in _map_pair_blocks(stream, evaluate):
        if kept is None:
            continue
        left, right, dists = kept
        bins = np.searchsorted(sorted_eps, dists, side="left")
        flat_l = bins * n + left
        flat_r = bins * n + right
        binned += np.bincount(flat_l, minlength=k * n).reshape(k, n)
        binned += np.bincount(flat_r, minlength=k * n).reshape(k, n)
    counts_sorted = np.cumsum(binned, axis=0)
    counts_sorted += 1  # every segment neighbors itself at any eps >= 0
    counts = np.empty_like(counts_sorted)
    counts[sort_order] = counts_sorted
    return counts
