"""ε-neighborhood engines for line segments (Definition 4).

``N_eps(L_i) = { L_j in D | dist(L_i, L_j) <= eps }``.

Per-query engines are provided here:

* :class:`BruteForceNeighborhood` — one vectorized one-vs-all distance
  evaluation per query; O(n) per query, O(n^2) total (Lemma 3 without
  an index).
* :class:`GridNeighborhood` — a uniform-grid spatial prefilter followed
  by exact distances on the candidates; sub-quadratic on clustered data
  (Lemma 3 with an index; we use a grid rather than the paper's R-tree
  for queries because the R-tree substrate in :mod:`repro.index.rtree`
  shares the same candidate bound).
* :class:`RTreeNeighborhood` — the same prefilter over a bulk-loaded
  R-tree, the structure Lemma 3 literally names.

The batched engine lives in :mod:`repro.cluster.neighbor_graph`:
:class:`~repro.cluster.neighbor_graph.PrecomputedNeighborhood`
materializes the whole relation once (grid-bucketed candidates, blocked
pair evaluation) and serves every query as an O(1) CSR slice.  All four
return identical neighborhoods; :func:`make_neighborhood_engine` picks
between them.

**Why a geometric prefilter is sound even though the TRACLUS distance
is not a metric.**  With weights ``w_perp, w_par > 0`` and
``dist(Li, Lj) <= eps``:

* ``d_perp <= eps / w_perp``.  The Lehmer mean of order 2 satisfies
  ``L2(a, b) >= max(a, b) / 2``, so both perpendicular offsets are at
  most ``2 eps / w_perp``.
* ``d_par <= eps / w_par``, so at least one projected endpoint of the
  shorter segment lies within ``eps / w_par`` (along Li) of an endpoint
  of Li.

That endpoint of the shorter segment is therefore within Euclidean
distance ``r = sqrt((2 eps / w_perp)^2 + (eps / w_par)^2)`` of an
endpoint of the longer segment, hence the two segments' bounding boxes,
after expanding the query's by ``r``, must intersect.  Every true
neighbor survives the prefilter; the exact distance pass removes false
positives.  If either weight is zero the bound is vacuous and the grid
engine degrades to brute force.

One float subtlety: the *computed* distance of a pair whose geometric
gap is below ~sqrt(5e-324) underflows to exactly 0, which at ``eps = 0``
(nominal radius 0) would let an exact bbox prefilter prune a pair the
distance pass accepts.  All prefilter engines therefore share
:func:`repro.cluster.neighbor_graph.candidate_radius`, which floors the
radius just above that underflow scale.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.cluster.neighbor_graph import (
    PrecomputedNeighborhood,
    candidate_radius,
)
from repro.core.config import NEIGHBORHOOD_AUTO_BATCH_SEGMENTS
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.index.grid import SegmentGrid
from repro.model.segmentset import SegmentSet


class NeighborhoodEngine(Protocol):
    """Anything that can answer Definition 4 queries over a fixed set."""

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices of ``N_eps`` of stored segment *index* (includes the
        query itself, whose self-distance is 0)."""
        ...  # pragma: no cover - protocol

    def neighborhood_sizes(self) -> np.ndarray:
        """``|N_eps(L)|`` for every stored segment (used by the entropy
        heuristic, Formula 10)."""
        ...  # pragma: no cover - protocol


class BruteForceNeighborhood:
    """Exact ε-neighborhoods via one vectorized pass per query."""

    def __init__(
        self,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        self.segments = segments
        self.eps = float(eps)
        self.distance = distance if distance is not None else SegmentDistance()

    def neighbors_of(self, index: int) -> np.ndarray:
        dists = self.distance.member_to_all(index, self.segments)
        return np.nonzero(dists <= self.eps)[0]

    def neighborhood_sizes(self) -> np.ndarray:
        n = len(self.segments)
        sizes = np.zeros(n, dtype=np.int64)
        for i in range(n):
            sizes[i] = self.neighbors_of(i).size
        return sizes


class GridNeighborhood:
    """Grid-prefiltered ε-neighborhoods (exact results, fewer distance
    evaluations).  See the module docstring for the candidate-radius
    soundness argument."""

    def __init__(
        self,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        cell_size: Optional[float] = None,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        self.segments = segments
        self.eps = float(eps)
        self.distance = distance if distance is not None else SegmentDistance()
        if self.distance.w_perp <= 0 or self.distance.w_par <= 0:
            raise ClusteringError(
                "the grid prefilter needs w_perp > 0 and w_par > 0; "
                "use BruteForceNeighborhood for degenerate weightings"
            )
        self.candidate_radius = candidate_radius(self.eps, self.distance)
        if cell_size is None:
            # Cells comparable to the query radius keep the candidate
            # window at ~3x3 cells.
            cell_size = max(self.candidate_radius, 1e-9)
        self._grid = SegmentGrid(segments, cell_size=cell_size)

    def neighbors_of(self, index: int) -> np.ndarray:
        candidates = self._grid.candidates_near(index, self.candidate_radius)
        if candidates.size == 0:
            return np.array([index], dtype=np.int64)
        query = self.segments.segment(index)
        subset = self.segments.subset(candidates)
        # seg ids within the subset are positional; map the query's id to
        # its position so equal-length ties order identically.
        positions = np.nonzero(candidates == index)[0]
        query_position = int(positions[0]) if positions.size else -1
        dists = self.distance.to_all(query, subset, query_seg_id=query_position)
        if query_position >= 0:
            dists[query_position] = 0.0  # dist(L, L) = 0 by definition
        return candidates[dists <= self.eps]

    def neighborhood_sizes(self) -> np.ndarray:
        n = len(self.segments)
        sizes = np.zeros(n, dtype=np.int64)
        for i in range(n):
            sizes[i] = self.neighbors_of(i).size
        return sizes


class RTreeNeighborhood:
    """R-tree-prefiltered ε-neighborhoods (exact results).

    Same candidate-radius soundness argument as the grid engine (module
    docstring), with a bulk-loaded Guttman R-tree over segment bounding
    boxes standing in for the hash grid — this is the engine Lemma 3's
    O(n log n) claim literally describes (reference [10]).
    """

    def __init__(
        self,
        segments: SegmentSet,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        max_entries: int = 16,
    ):
        from repro.geometry.bbox import BoundingBox
        from repro.index.rtree import RTree

        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        self.segments = segments
        self.eps = float(eps)
        self.distance = distance if distance is not None else SegmentDistance()
        if self.distance.w_perp <= 0 or self.distance.w_par <= 0:
            raise ClusteringError(
                "the R-tree prefilter needs w_perp > 0 and w_par > 0; "
                "use BruteForceNeighborhood for degenerate weightings"
            )
        self.candidate_radius = candidate_radius(self.eps, self.distance)
        self._box_type = BoundingBox
        self._tree = RTree.bulk_load(
            (
                (BoundingBox.of_segment(segments.starts[i], segments.ends[i]), i)
                for i in range(len(segments))
            ),
            max_entries=max_entries,
        )

    def neighbors_of(self, index: int) -> np.ndarray:
        window = self._box_type.of_segment(
            self.segments.starts[index], self.segments.ends[index]
        ).expanded(self.candidate_radius)
        candidates = np.array(
            sorted(e.payload for e in self._tree.query_window(window)),
            dtype=np.int64,
        )
        if candidates.size == 0:
            return np.array([index], dtype=np.int64)
        query = self.segments.segment(index)
        subset = self.segments.subset(candidates)
        positions = np.nonzero(candidates == index)[0]
        query_position = int(positions[0]) if positions.size else -1
        dists = self.distance.to_all(query, subset, query_seg_id=query_position)
        if query_position >= 0:
            dists[query_position] = 0.0
        return candidates[dists <= self.eps]

    def neighborhood_sizes(self) -> np.ndarray:
        n = len(self.segments)
        sizes = np.zeros(n, dtype=np.int64)
        for i in range(n):
            sizes[i] = self.neighbors_of(i).size
        return sizes


#: Below this set size ``"auto"`` keeps the zero-setup brute engine;
#: above it the batched graph build amortises immediately (every
#: consumer queries all n rows at least once).  The number itself lives
#: in :mod:`repro.core.config` next to every other auto-selection
#: threshold; this is a re-export for engine-level consumers.
AUTO_BATCH_THRESHOLD = NEIGHBORHOOD_AUTO_BATCH_SEGMENTS

#: Engine names accepted by :func:`make_neighborhood_engine` (and by
#: every ``neighborhood_method`` knob that forwards to it).
NEIGHBORHOOD_METHODS = ("auto", "brute", "grid", "rtree", "batch")


def make_neighborhood_engine(
    segments: SegmentSet,
    eps: float,
    distance: Optional[SegmentDistance] = None,
    method: str = "auto",
) -> "NeighborhoodEngine":
    """Engine factory.

    ``method`` is ``"brute"``, ``"grid"``, ``"rtree"``, ``"batch"``
    (the precomputed CSR graph of
    :mod:`repro.cluster.neighbor_graph`), or ``"auto"``.

    The ``"auto"`` policy: brute below
    :data:`AUTO_BATCH_THRESHOLD` segments (nothing to amortise) and
    whenever a zero ``w_perp``/``w_par`` weight voids the geometric
    prefilter *and* bounded memory matters (the batch fallback would
    evaluate — exactly but eagerly — all O(n^2) pairs); batch otherwise.
    Batch strictly dominates grid/rtree for whole-dataset consumers
    (same candidate sets, each pair evaluated once, no per-query Python
    loop); the per-query engines remain available explicitly for
    few-query or memory-capped workloads.
    """
    distance = distance if distance is not None else SegmentDistance()
    if method == "brute":
        return BruteForceNeighborhood(segments, eps, distance)
    if method == "grid":
        return GridNeighborhood(segments, eps, distance)
    if method == "rtree":
        return RTreeNeighborhood(segments, eps, distance)
    if method == "batch":
        return PrecomputedNeighborhood(segments, eps, distance)
    if method != "auto":
        raise ClusteringError(
            f"unknown neighborhood method {method!r}; "
            f"expected one of {NEIGHBORHOOD_METHODS}"
        )
    if (
        len(segments) >= AUTO_BATCH_THRESHOLD
        and distance.w_perp > 0
        and distance.w_par > 0
    ):
        return PrecomputedNeighborhood(segments, eps, distance)
    return BruteForceNeighborhood(segments, eps, distance)
