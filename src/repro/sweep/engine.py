"""Amortised (ε, MinLns) parameter sweeps — Section 5.4 in one pass.

Every evaluation figure of the paper (16-22) is a sweep over the two
clustering parameters, and the naive way to produce one — a fresh
:meth:`TRACLUS.fit` per grid point — re-runs phase 1 and re-evaluates
every pairwise distance at *every* point.  Neither depends on the grid
point:

* the characteristic points of Figure 8 are parameter-free, so phase 1
  is shared by the **whole grid**;
* the ε-graph at any ε is a sub-graph of the ε-graph at ``max(eps)``,
  so the distance kernel runs **once**, at the largest radius.

What *does* vary per grid point is cheap.  The builder sorts the
ε_max-graph's edges by distance; walking a MinLns column with ε
ascending, each step admits the next run of edges and feeds them to the
same :class:`~repro.cluster.labeling.CoreGraphLabeler` machinery the
streaming pipeline uses — cardinalities tick up, cores are promoted
(never demoted: ε only grows), components merge via union-by-size
(never split).  Labels then fall out of the shared Figure-12 derivation
(border rule + Step-3 filter), so every grid point is **bitwise
identical** to an independent ``TRACLUS.fit`` at those parameters — the
property tests in ``tests/property/test_sweep_equivalence.py`` assert
exactly that, edge-distance ties and MinLns boundaries included.

Weighted cardinalities (Section 4.2) cannot be maintained
incrementally without float drift — the batch computes ``np.sum`` over
each ascending neighbor row, and bitwise equality demands the same
summation tree — so the weighted path recomputes the core set from the
stored CSR rows per ε and rebuilds components with the labeler's
O(V + E) pass.  Still no distance kernel work.

MinLns columns are independent of each other, which is what the
optional process-pool executor shards (``SweepConfig.executor =
"process"``): each worker receives the sorted edge arrays once and
walks its own columns.

When is the naive per-point refit still preferable?  A single grid
point (nothing to amortise — ``TRACLUS.fit`` avoids building sweep
state), or an ε_max so large that the ε_max-graph's ``O(E)`` edge list
approaches n² and blows memory where a per-point ``"grid"``/``"rtree"``
engine would not (see the ROADMAP engine-selection note).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.labeling import CoreGraphLabeler, apply_cardinality_filter
from repro.cluster.neighbor_graph import DEFAULT_PAIR_BLOCK, NeighborGraph
from repro.core.config import SWEEP_EXECUTORS, SweepConfig, TraclusConfig
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError, TrajectoryError
from repro.model.cluster import NOISE, Cluster, clusters_from_labels
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.obs import NULL_REGISTRY, span
from repro.params.heuristic import ParameterEstimate, recommend_parameters
from repro.partition.approximate import partition_all


# ---------------------------------------------------------------------------
# Column walkers (module-level so the process-pool executor can ship them)
# ---------------------------------------------------------------------------

def _edge_incidence(
    n: int, edge_u: np.ndarray, edge_v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Directed views of a distance-sorted unordered edge list.

    Returns ``(dnode, dmate, inc_indptr, inc_mate, inc_pos)``:

    * ``dnode``/``dmate`` interleave both directions of each edge in
      admission order — entries ``2k`` and ``2k + 1`` belong to edge
      ``k``, so the first ``2 * cut`` entries are exactly the directed
      edges admitted at cut ``cut``;
    * ``inc_indptr``/``inc_mate``/``inc_pos`` are an incidence CSR over
      nodes: node *u*'s row lists its mates with the owning edge index
      (``inc_pos``, ascending within the row), so the mates admitted at
      any cut are a prefix of the row found by one ``searchsorted``.

    Built once per engine and shared by every MinLns column — this is
    what replaces the per-edge Python adjacency appends of the original
    column walker.
    """
    n_edges = int(edge_u.size)
    dnode = np.empty(2 * n_edges, dtype=np.int64)
    dmate = np.empty(2 * n_edges, dtype=np.int64)
    dnode[0::2] = edge_u
    dnode[1::2] = edge_v
    dmate[0::2] = edge_v
    dmate[1::2] = edge_u
    pos = np.repeat(np.arange(n_edges, dtype=np.int64), 2)
    order = np.argsort(dnode, kind="stable")  # keeps pos ascending per node
    inc_mate = dmate[order]
    inc_pos = pos[order]
    inc_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dnode, minlength=n), out=inc_indptr[1:])
    return dnode, dmate, inc_indptr, inc_mate, inc_pos


def _column_labels_counts(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    cuts: np.ndarray,
    min_lns: float,
    traj_ids: np.ndarray,
    threshold: Optional[float],
    incidence: Optional[Tuple[np.ndarray, ...]] = None,
) -> np.ndarray:
    """Labels at every sorted-unique ε for one MinLns, count
    cardinalities.

    ``cuts[k]`` is the number of sorted edges admitted at the k-th ε
    (``searchsorted(..., side="right")``, so a distance exactly equal to
    ε is admitted — the same ``dist <= eps`` predicate every engine
    uses).  Between consecutive ε values the state is updated
    incrementally and in vectorized blocks: each ε step admits its
    whole tie-block of edges at once — ``bincount`` degree updates, a
    vectorized promotion test, union-find merges only for core-core
    incidences — never a fresh DBSCAN and never a per-edge Python loop.

    The final labels are a pure function of (core set, admitted
    adjacency, core components, per-component minima), so this walker
    is bitwise identical to the original per-edge
    :class:`~repro.cluster.labeling.CoreGraphLabeler` walk (the
    hypothesis suite in ``tests/property/test_sweep_equivalence.py``
    pins both against independent ``TRACLUS.fit`` calls).
    """
    if incidence is None:
        incidence = _edge_incidence(n, edge_u, edge_v)
    dnode, dmate, inc_indptr, inc_mate, inc_pos = incidence
    step3 = min_lns if threshold is None else threshold
    out = np.empty((cuts.size, n), dtype=np.int64)

    deg = np.zeros(n, dtype=np.int64)
    core = np.zeros(n, dtype=bool)
    # Union-find over core ids: union by size, with the component
    # minimum (the Figure-12 "seed", i.e. formation order) carried on
    # the root.
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    comp_min = np.arange(n, dtype=np.int64)
    # With no edges every cardinality is 1 (the segment itself); a
    # MinLns at or below that makes everything core immediately.
    if n and 1.0 >= min_lns:
        core[:] = True

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]
        if comp_min[rb] < comp_min[ra]:
            comp_min[ra] = comp_min[rb]

    def derive(cut: int) -> np.ndarray:
        labels = np.full(n, NOISE, dtype=np.int64)
        cores = np.flatnonzero(core)
        if cores.size == 0:
            return labels
        roots = parent[cores]
        while True:
            hop = parent[roots]
            if np.array_equal(hop, roots):
                break
            roots = hop
        parent[cores] = roots  # vectorized path compression
        unique_roots = np.unique(roots)
        order = np.argsort(comp_min[unique_roots], kind="stable")
        n_components = int(order.size)
        rank_of = np.empty(n, dtype=np.int64)  # indexed by root id
        rank_of[unique_roots[order]] = np.arange(n_components, dtype=np.int64)
        labels[cores] = rank_of[roots]
        # Borders, over the admitted directed-edge prefix: the earliest
        # adjacent component claims the segment unless a later-formed
        # cluster's seed has it in its neighborhood (Figure 12 line 07
        # overwrites unconditionally — the last adjacent seed wins).
        node = dnode[:2 * cut]
        mate = dmate[:2 * cut]
        border_mask = core[mate] & ~core[node]
        if np.any(border_mask):
            b_node = node[border_mask]
            b_mate = mate[border_mask]
            b_root = parent[b_mate]  # cores were just compressed
            b_rank = rank_of[b_root]
            first_claim = np.full(n, n_components, dtype=np.int64)
            np.minimum.at(first_claim, b_node, b_rank)
            last_seed = np.full(n, -1, dtype=np.int64)
            seed_mask = b_mate == comp_min[b_root]
            if np.any(seed_mask):
                np.maximum.at(
                    last_seed, b_node[seed_mask], b_rank[seed_mask]
                )
            borders = np.flatnonzero(first_claim < n_components)
            labels[borders] = np.where(
                last_seed[borders] >= 0,
                last_seed[borders],
                first_claim[borders],
            )
        return apply_cardinality_filter(labels, traj_ids, n_components, step3)

    at = 0
    for k, cut in enumerate(cuts.tolist()):
        if cut == at and k > 0:
            out[k] = out[k - 1]  # no edge crossed this ε step
            continue
        if cut > at:
            block_u = edge_u[at:cut]
            block_v = edge_v[at:cut]
            deg += np.bincount(block_u, minlength=n)
            deg += np.bincount(block_v, minlength=n)
            touched = np.unique(np.concatenate([block_u, block_v]))
            promoted = touched[
                ~core[touched]
                & ((deg[touched] + 1).astype(np.float64) >= min_lns)
            ]
            core[promoted] = True
            # A promotion activates every already-admitted edge from the
            # new core to another core: union along its incidence-row
            # prefix (mates whose owning edge index is below the cut).
            for u in promoted.tolist():
                lo = int(inc_indptr[u])
                hi = int(inc_indptr[u + 1])
                admitted = lo + int(
                    np.searchsorted(inc_pos[lo:hi], cut, side="left")
                )
                mates = inc_mate[lo:admitted]
                for w in mates[core[mates]].tolist():
                    union(u, w)
            # Block edges whose endpoints are both core by now (old
            # cores on both sides; promoted endpoints were already
            # unioned above — those re-unions are no-ops).
            both = core[block_u] & core[block_v]
            if np.any(both):
                for u, w in zip(
                    block_u[both].tolist(), block_v[both].tolist()
                ):
                    union(u, w)
            at = cut
        out[k] = derive(at)
    return out


def _column_labels_weighted(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    cuts: np.ndarray,
    unique_eps: np.ndarray,
    min_lns: float,
    traj_ids: np.ndarray,
    weights: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    threshold: Optional[float],
    incidence: Optional[Tuple[np.ndarray, ...]] = None,
) -> np.ndarray:
    """Labels at every sorted-unique ε for one MinLns, weighted
    cardinalities (Section 4.2).

    The admitted adjacency is served by prefix slices of the shared
    edge-incidence CSR (no per-edge Python appends), but the core set is
    recomputed per ε from the stored CSR rows: the batch's weighted
    cardinality is ``np.sum`` over the ascending neighbor row, and only
    the identical summation tree is bitwise-faithful to it.
    """
    if incidence is None:
        incidence = _edge_incidence(n, edge_u, edge_v)
    _, _, inc_indptr, inc_mate, inc_pos = incidence
    labeler = CoreGraphLabeler()
    ids = list(range(n))
    step3 = min_lns if threshold is None else threshold
    out = np.empty((cuts.size, n), dtype=np.int64)
    at = 0

    def adjacent(uid: int) -> np.ndarray:
        lo = int(inc_indptr[uid])
        hi = int(inc_indptr[uid + 1])
        admitted = lo + int(
            np.searchsorted(inc_pos[lo:hi], at, side="left")
        )
        return inc_mate[lo:admitted]

    for k, cut in enumerate(cuts.tolist()):
        if cut == at and k > 0:
            out[k] = out[k - 1]
            continue
        at = cut
        eps = unique_eps[k]
        cores = []
        for i in range(n):
            row = slice(indptr[i], indptr[i + 1])
            neighbors = indices[row][data[row] <= eps]
            if float(np.sum(weights[neighbors])) >= min_lns:
                cores.append(i)
        labeler.rebuild(ids, adjacent, cores)
        labels, n_clusters = labeler.labels_for(ids)
        out[k] = apply_cardinality_filter(labels, traj_ids, n_clusters, step3)
    return out


# -- process-pool shards -----------------------------------------------------

_WORKER_PAYLOAD: Optional[dict] = None


def _sweep_worker_init(payload: dict) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _sweep_worker_column(j: int) -> Tuple[int, np.ndarray]:
    p = _WORKER_PAYLOAD
    return j, _run_column(p, float(p["min_lns_values"][j]))


def _run_column(payload: dict, min_lns: float) -> np.ndarray:
    if payload["use_weights"]:
        return _column_labels_weighted(
            payload["n"], payload["edge_u"], payload["edge_v"],
            payload["cuts"], payload["unique_eps"], min_lns,
            payload["traj_ids"], payload["weights"], payload["indptr"],
            payload["indices"], payload["data"], payload["threshold"],
            incidence=payload.get("incidence"),
        )
    return _column_labels_counts(
        payload["n"], payload["edge_u"], payload["edge_v"],
        payload["cuts"], min_lns, payload["traj_ids"],
        payload["threshold"], incidence=payload.get("incidence"),
    )


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class SweepEngine:
    """Shared sweep state over one segment set: the ε_max neighbor
    graph, its distance-sorted edge list, and the multi-ε neighborhood
    counts — everything a grid of (ε, MinLns) points can be derived
    from without touching the distance kernel again.
    """

    def __init__(
        self,
        segments: SegmentSet,
        eps_values: Sequence[float],
        distance: Optional[SegmentDistance] = None,
        pair_block: int = DEFAULT_PAIR_BLOCK,
        graph: Optional[NeighborGraph] = None,
        metrics=None,
    ):
        eps_array = np.asarray(list(eps_values), dtype=np.float64)
        if eps_array.ndim != 1 or eps_array.size == 0:
            raise ClusteringError("eps_values must be a non-empty sequence")
        if not np.all(eps_array >= 0):
            raise ClusteringError("eps values must be non-negative")
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.segments = segments
        self.distance = distance if distance is not None else SegmentDistance()
        self.eps_values = eps_array
        # Sorted-unique ε axis; `_unravel` maps it back to user order.
        self._unique_eps, self._unravel = np.unique(
            eps_array, return_inverse=True
        )
        self.eps_max = float(self._unique_eps[-1])
        if graph is not None:
            # Reuse a prebuilt ε-graph (e.g. a Workspace artifact): the
            # graph at any ε <= graph.eps is recovered by filtering the
            # stored distances, and because the pair kernel is
            # elementwise, the filtered CSR is bitwise identical to a
            # fresh build at eps_max.
            if graph.n_segments != len(segments):
                raise ClusteringError(
                    f"graph covers {graph.n_segments} segments but the "
                    f"set has {len(segments)}"
                )
            if graph.eps < self.eps_max:
                raise ClusteringError(
                    f"prebuilt graph at eps={graph.eps} cannot serve "
                    f"eps_max={self.eps_max}; rebuild at the larger radius"
                )
            self.graph = (
                graph
                if graph.eps == self.eps_max
                else graph.restrict(self.eps_max)
            )
        else:
            self.graph = NeighborGraph.build(
                segments, self.eps_max, self.distance, pair_block=pair_block
            )
        n = len(segments)
        rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.graph.indptr)
        )
        upper = self.graph.indices > rows  # one record per unordered pair
        order = np.argsort(self.graph.data[upper], kind="stable")
        self._edge_u = rows[upper][order]
        self._edge_v = self.graph.indices[upper][order]
        self._edge_dist = self.graph.data[upper][order]
        # cuts[k]: edges admitted at the k-th sorted-unique ε.  "right"
        # keeps a distance exactly equal to ε inside — the same
        # ``dist <= eps`` predicate every neighborhood engine applies.
        self._cuts = np.searchsorted(
            self._edge_dist, self._unique_eps, side="right"
        )
        self._rows_all = rows
        self._counts_cache: Optional[np.ndarray] = None
        self._incidence_cache: Optional[Tuple[np.ndarray, ...]] = None

    # -- basic shape ---------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_edges(self) -> int:
        """Unordered ε_max-graph edges (diagonal excluded)."""
        return int(self._edge_dist.size)

    # -- multi-ε neighborhood counts (Formula 10 inputs) ---------------------
    def neighborhood_counts(self) -> np.ndarray:
        """``|N_eps(L_i)|`` for every ε in ``eps_values`` (user order)
        and every segment — identical ints to
        :func:`repro.cluster.neighbor_graph.neighborhood_size_counts`,
        read off the stored distances instead of a fresh kernel pass.
        """
        if self._counts_cache is None:
            k = self._unique_eps.size
            n = self.n_segments
            bins = np.searchsorted(
                self._unique_eps, self.graph.data, side="left"
            )
            binned = np.bincount(
                bins * n + self._rows_all, minlength=k * n
            ).reshape(k, n)
            self._counts_cache = np.cumsum(binned, axis=0)
        return self._counts_cache[self._unravel]

    def entropy_curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(entropies, avg_sizes)`` over ``eps_values`` (user order) —
        the Figures 16/19 curves, bitwise equal to
        :func:`repro.params.entropy.entropy_curve` on the same grid."""
        from repro.params.entropy import entropy_from_counts

        return entropy_from_counts(self.neighborhood_counts())

    def recommend_parameters(self) -> ParameterEstimate:
        """The Section 4.4 heuristic evaluated on the sweep's ε grid,
        with the neighborhood counts served from the shared graph."""
        return recommend_parameters(
            self.segments,
            eps_values=self.eps_values,
            distance=self.distance,
            method="grid",
            counts=self.neighborhood_counts(),
        )

    # -- label grids ---------------------------------------------------------
    def labels_for_min_lns(
        self,
        min_lns: float,
        cardinality_threshold: Optional[float] = None,
        use_weights: bool = False,
    ) -> np.ndarray:
        """One MinLns column: ``(n_eps, n_segments)`` labels in user ε
        order, each row bitwise identical to
        ``LineSegmentDBSCAN(eps, min_lns).fit(segments)``."""
        if min_lns <= 0:
            raise ClusteringError(f"min_lns must be positive, got {min_lns}")
        payload = self._payload(cardinality_threshold, use_weights)
        return _run_column(payload, float(min_lns))[self._unravel]

    def labels_grid(
        self,
        min_lns_values: Sequence[float],
        cardinality_threshold: Optional[float] = None,
        use_weights: bool = False,
        executor: str = "serial",
        n_workers: Optional[int] = None,
    ) -> np.ndarray:
        """The full grid: ``(n_eps, n_min_lns, n_segments)`` labels in
        user order.  ``executor="process"`` shards MinLns columns over a
        process pool (columns are mutually independent)."""
        min_lns_list = [float(m) for m in min_lns_values]
        if not min_lns_list:
            raise ClusteringError("min_lns_values must be non-empty")
        for min_lns in min_lns_list:
            if min_lns <= 0:
                raise ClusteringError(
                    f"min_lns values must be positive, got {min_lns}"
                )
        payload = self._payload(cardinality_threshold, use_weights)
        payload["min_lns_values"] = min_lns_list
        columns: Dict[int, np.ndarray] = {}
        grid_started = time.perf_counter()
        column_seconds = self.metrics.histogram(
            "repro_sweep_column_seconds",
            help="Wall seconds per serial MinLns column walk.",
        )
        if executor == "process" and len(min_lns_list) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with span("sweep_grid", executor="process",
                      n_columns=len(min_lns_list)), ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_sweep_worker_init,
                initargs=(payload,),
            ) as pool:
                for j, column in pool.map(
                    _sweep_worker_column, range(len(min_lns_list))
                ):
                    columns[j] = column
        elif executor not in SWEEP_EXECUTORS:
            raise ClusteringError(
                f"unknown sweep executor {executor!r}; expected one of "
                f"{SWEEP_EXECUTORS}"
            )
        else:
            with span("sweep_grid", executor=executor,
                      n_columns=len(min_lns_list)):
                for j, min_lns in enumerate(min_lns_list):
                    column_started = time.perf_counter()
                    columns[j] = _run_column(payload, min_lns)
                    column_seconds.observe(
                        time.perf_counter() - column_started
                    )
        self.metrics.histogram(
            "repro_sweep_grid_seconds",
            help="Wall seconds per full labels_grid walk.",
        ).observe(time.perf_counter() - grid_started)
        out = np.empty(
            (self.eps_values.size, len(min_lns_list), self.n_segments),
            dtype=np.int64,
        )
        for j in range(len(min_lns_list)):
            out[:, j, :] = columns[j][self._unravel]
        return out

    def _payload(
        self, cardinality_threshold: Optional[float], use_weights: bool
    ) -> dict:
        if self._incidence_cache is None:
            self._incidence_cache = _edge_incidence(
                self.n_segments, self._edge_u, self._edge_v
            )
        payload = {
            "n": self.n_segments,
            "edge_u": self._edge_u,
            "edge_v": self._edge_v,
            "cuts": self._cuts,
            "unique_eps": self._unique_eps,
            "traj_ids": self.segments.traj_ids,
            "threshold": cardinality_threshold,
            "use_weights": bool(use_weights),
            "incidence": self._incidence_cache,
        }
        if use_weights:
            payload.update(
                weights=self.segments.weights,
                indptr=self.graph.indptr,
                indices=self.graph.indices,
                data=self.graph.data,
            )
        return payload

    def __repr__(self) -> str:
        return (
            f"SweepEngine(n_segments={self.n_segments}, "
            f"n_edges={self.n_edges}, eps_max={self.eps_max}, "
            f"n_eps={self.eps_values.size})"
        )


# ---------------------------------------------------------------------------
# Result container + facade
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Everything a parameter study reads off a sweep.

    ``labels[i, j]`` is the per-segment label array at
    ``(eps_values[i], min_lns_values[j])`` — bitwise identical to an
    independent ``TRACLUS.fit`` at those parameters.  The entropy curve
    and neighborhood counts depend only on ε and ride along for free.
    """

    eps_values: Tuple[float, ...]
    min_lns_values: Tuple[float, ...]
    segments: SegmentSet
    characteristic_points: List[List[int]]
    labels: np.ndarray  # (n_eps, n_min_lns, n_segments) int64
    neighborhood_counts: np.ndarray  # (n_eps, n_segments) int64
    entropies: np.ndarray  # (n_eps,) float64
    avg_neighborhood_sizes: np.ndarray  # (n_eps,) float64
    n_graph_edges: int
    parameters: Dict[str, float] = field(default_factory=dict)

    # -- lookup --------------------------------------------------------------
    def _index(self, eps: float, min_lns: float) -> Tuple[int, int]:
        try:
            i = self.eps_values.index(float(eps))
            j = self.min_lns_values.index(float(min_lns))
        except ValueError:
            raise ClusteringError(
                f"({eps}, {min_lns}) is not a grid point of this sweep"
            ) from None
        return i, j

    def labels_at(self, eps: float, min_lns: float) -> np.ndarray:
        """Per-segment labels at one grid point (by parameter value)."""
        i, j = self._index(eps, min_lns)
        return self.labels[i, j]

    def clusters_at(self, eps: float, min_lns: float) -> List[Cluster]:
        """:class:`Cluster` objects at one grid point (no
        representatives — sweeps are label studies; run ``TRACLUS.fit``
        at the chosen point for the full Figure-15 output)."""
        return clusters_from_labels(self.labels_at(eps, min_lns), self.segments)

    # -- summaries -----------------------------------------------------------
    def point_summary(self, i: int, j: int) -> Dict[str, float]:
        """Scalar metrics of grid cell ``(i, j)`` (positional)."""
        labels = self.labels[i, j]
        clustered = int(np.sum(labels >= 0))
        n_clusters = int(labels.max()) + 1 if labels.size else 0
        n_clusters = max(n_clusters, 0)
        n = labels.size
        return {
            "eps": float(self.eps_values[i]),
            "min_lns": float(self.min_lns_values[j]),
            "n_clusters": n_clusters,
            "n_clustered": clustered,
            "n_noise": n - clustered,
            "noise_ratio": (n - clustered) / n if n else 0.0,
            "mean_cluster_size": clustered / n_clusters if n_clusters else 0.0,
            "entropy": float(self.entropies[i]),
            "avg_neighborhood_size": float(self.avg_neighborhood_sizes[i]),
        }

    def summary_rows(self) -> List[Dict[str, float]]:
        """One summary dict per grid cell, ε-major in user order."""
        return [
            self.point_summary(i, j)
            for i in range(len(self.eps_values))
            for j in range(len(self.min_lns_values))
        ]

    def __repr__(self) -> str:
        return (
            f"SweepResult(grid={len(self.eps_values)}x"
            f"{len(self.min_lns_values)}, "
            f"n_segments={len(self.segments)})"
        )


def run_sweep(
    trajectories: Sequence[Trajectory],
    config: TraclusConfig,
    sweep: SweepConfig,
) -> SweepResult:
    """Partition once, build one ε_max graph, derive the whole grid.

    ``config`` supplies everything point-independent (distance weights,
    suppression, phase-1 engine, ``use_weights``, the Step-3
    ``cardinality_threshold``); its ``eps``/``min_lns``/
    ``neighborhood_method``/representative knobs are ignored — the grid
    comes from *sweep*, the ε engine is the shared graph itself, and
    sweeps stop at labels.
    """
    trajectories = list(trajectories)
    if not trajectories:
        raise TrajectoryError("a sweep needs at least one trajectory")
    dims = {t.dim for t in trajectories}
    if len(dims) != 1:
        raise TrajectoryError(
            f"all trajectories must share one dimensionality, got {sorted(dims)}"
        )
    segments, characteristic_points = partition_all(
        trajectories,
        suppression=config.suppression,
        method=config.partition_method,
    )
    engine = SweepEngine(segments, sweep.eps_values, config.distance())
    labels = engine.labels_grid(
        sweep.min_lns_values,
        cardinality_threshold=config.cardinality_threshold,
        use_weights=config.use_weights,
        executor=sweep.executor,
        n_workers=sweep.n_workers,
    )
    entropies, avg_sizes = engine.entropy_curve()
    return SweepResult(
        eps_values=tuple(float(e) for e in sweep.eps_values),
        min_lns_values=tuple(float(m) for m in sweep.min_lns_values),
        segments=segments,
        characteristic_points=characteristic_points,
        labels=labels,
        neighborhood_counts=engine.neighborhood_counts(),
        entropies=entropies,
        avg_neighborhood_sizes=avg_sizes,
        n_graph_edges=engine.n_edges,
    )
