"""Amortised (ε, MinLns) parameter sweeps.

One phase-1 pass, one ε_max neighbor graph, every grid point derived
incrementally — see :mod:`repro.sweep.engine`.
"""

from repro.sweep.engine import SweepEngine, SweepResult, run_sweep

__all__ = ["SweepEngine", "SweepResult", "run_sweep"]
