"""QMeasure — Formula (11).

``QMeasure = Total SSE + Noise Penalty`` where

* Total SSE sums, per cluster, ``(1 / 2|C|) * sum_{x in C} sum_{y in C}
  dist(x, y)^2`` (the pairwise form of the sum of squared errors);
* the Noise Penalty applies the same quantity to the noise set ``N``,
  so that classifying real cluster members as noise (too small an ε /
  too large a MinLns) is punished.

Smaller is better.  The paper uses QMeasure as "a hint of the
clustering quality" — within a fixed MinLns it tracks the visually best
ε (Figures 17 and 20).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.distance.matrix import pairwise_distance_matrix
from repro.distance.weighted import SegmentDistance
from repro.model.cluster import Cluster, NOISE
from repro.model.segmentset import SegmentSet


class QualityBreakdown(NamedTuple):
    """Total SSE, noise penalty, and their sum (the QMeasure)."""

    total_sse: float
    noise_penalty: float

    @property
    def qmeasure(self) -> float:
        return self.total_sse + self.noise_penalty


def _half_mean_squared_pairwise(
    segments: SegmentSet,
    indices: np.ndarray,
    distance: SegmentDistance,
) -> float:
    """``(1 / 2m) * sum_ij dist(i, j)^2`` over the index subset."""
    m = indices.size
    if m == 0:
        return 0.0
    matrix = pairwise_distance_matrix(segments, distance, indices)
    return float(np.sum(matrix**2) / (2.0 * m))


def cluster_sse(
    cluster: Cluster, distance: Optional[SegmentDistance] = None
) -> float:
    """SSE of one cluster in the pairwise form of Formula (11)."""
    if distance is None:
        distance = SegmentDistance()
    return _half_mean_squared_pairwise(
        cluster.segments, cluster.member_indices, distance
    )


def noise_penalty(
    segments: SegmentSet,
    labels: np.ndarray,
    distance: Optional[SegmentDistance] = None,
) -> float:
    """The noise term of Formula (11): half the mean squared pairwise
    distance over all noise segments."""
    if distance is None:
        distance = SegmentDistance()
    labels = np.asarray(labels)
    noise_indices = np.nonzero(labels == NOISE)[0]
    return _half_mean_squared_pairwise(segments, noise_indices, distance)


def quality_measure(
    clusters: Sequence[Cluster],
    segments: SegmentSet,
    labels: np.ndarray,
    distance: Optional[SegmentDistance] = None,
) -> QualityBreakdown:
    """Full Formula (11) over a clustering outcome."""
    if distance is None:
        distance = SegmentDistance()
    total_sse = sum(cluster_sse(c, distance) for c in clusters)
    penalty = noise_penalty(segments, labels, distance)
    return QualityBreakdown(total_sse=float(total_sse), noise_penalty=penalty)
