"""Clustering quality: the paper's QMeasure (Section 5.1, Formula 11)
plus external ground-truth metrics used by the test-suite and ablation
benches."""

from repro.quality.qmeasure import (
    QualityBreakdown,
    cluster_sse,
    noise_penalty,
    quality_measure,
)
from repro.quality.external import (
    adjusted_rand_index,
    clustering_f1,
    contingency,
    noise_rate,
    purity,
)

__all__ = [
    "QualityBreakdown",
    "cluster_sse",
    "noise_penalty",
    "quality_measure",
    "adjusted_rand_index",
    "clustering_f1",
    "contingency",
    "noise_rate",
    "purity",
]
