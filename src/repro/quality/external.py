"""External (ground-truth-based) clustering quality metrics.

The paper validates clusters by visual inspection; on synthetic data we
also know the *generating* structure (which corridor each trajectory
used), so the test-suite and ablation benches can score clusterings
against it.  Conventions:

* ``labels`` — per-item cluster ids, ``-1`` meaning noise;
* ``truth``  — per-item ground-truth class ids (no noise notion).

Noise items are excluded from pair-counting metrics by default (DBSCAN
declining to cluster an item is not an assignment error) and reported
separately via :func:`noise_rate`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ClusteringError


def _check(labels: np.ndarray, truth: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if labels.shape != truth.shape or labels.ndim != 1:
        raise ClusteringError(
            f"labels/truth must be congruent 1-D arrays, got "
            f"{labels.shape} vs {truth.shape}"
        )
    return labels, truth


def noise_rate(labels: np.ndarray) -> float:
    """Fraction of items labelled noise (-1)."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    return float(np.mean(labels == -1))


def contingency(labels: np.ndarray, truth: np.ndarray) -> Dict[Tuple[int, int], int]:
    """Joint counts over non-noise items: (cluster, class) -> count."""
    labels, truth = _check(labels, truth)
    table: Dict[Tuple[int, int], int] = {}
    for label, klass in zip(labels, truth):
        if label == -1:
            continue
        key = (int(label), int(klass))
        table[key] = table.get(key, 0) + 1
    return table


def purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Weighted purity of the clustering over non-noise items.

    Each cluster votes for its majority ground-truth class; purity is
    the fraction of non-noise items matching their cluster's majority.
    1.0 when every cluster is class-pure; returns 1.0 for an empty
    (all-noise) clustering by the usual vacuous convention.
    """
    table = contingency(labels, truth)
    if not table:
        return 1.0
    per_cluster: Dict[int, Dict[int, int]] = {}
    for (label, klass), count in table.items():
        per_cluster.setdefault(label, {})[klass] = count
    correct = sum(max(classes.values()) for classes in per_cluster.values())
    total = sum(table.values())
    return correct / total


def adjusted_rand_index(
    labels: np.ndarray, truth: np.ndarray, include_noise: bool = False
) -> float:
    """Adjusted Rand Index between the clustering and the ground truth.

    With ``include_noise=False`` (default) noise items are dropped
    before pair counting; with ``include_noise=True`` noise becomes its
    own cluster (useful to punish over-aggressive noise labelling).
    Returns 1.0 for identical partitions, ~0 for random agreement.
    """
    labels, truth = _check(labels, truth)
    if not include_noise:
        keep = labels != -1
        labels, truth = labels[keep], truth[keep]
    n = labels.size
    if n < 2:
        return 1.0

    def comb2(x: np.ndarray) -> float:
        return float(np.sum(x * (x - 1) / 2.0))

    cluster_ids, cluster_inverse = np.unique(labels, return_inverse=True)
    class_ids, class_inverse = np.unique(truth, return_inverse=True)
    table = np.zeros((cluster_ids.size, class_ids.size), dtype=np.int64)
    np.add.at(table, (cluster_inverse, class_inverse), 1)

    sum_ij = comb2(table.astype(np.float64))
    sum_i = comb2(table.sum(axis=1).astype(np.float64))
    sum_j = comb2(table.sum(axis=0).astype(np.float64))
    total_pairs = n * (n - 1) / 2.0
    expected = sum_i * sum_j / total_pairs
    maximum = (sum_i + sum_j) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_ij - expected) / (maximum - expected))


def clustering_f1(
    labels: np.ndarray, truth: np.ndarray
) -> Tuple[float, float, float]:
    """Pairwise precision / recall / F1 over non-noise items.

    A pair is *positive* when both items share a ground-truth class;
    *predicted positive* when they share a cluster.
    """
    labels, truth = _check(labels, truth)
    keep = labels != -1
    labels, truth = labels[keep], truth[keep]
    n = labels.size
    if n < 2:
        return 1.0, 1.0, 1.0
    same_cluster = labels[:, None] == labels[None, :]
    same_class = truth[:, None] == truth[None, :]
    upper = np.triu_indices(n, k=1)
    predicted = same_cluster[upper]
    actual = same_class[upper]
    tp = float(np.sum(predicted & actual))
    fp = float(np.sum(predicted & ~actual))
    fn = float(np.sum(~predicted & actual))
    precision = tp / (tp + fp) if tp + fp > 0 else 1.0
    recall = tp / (tp + fn) if tp + fn > 0 else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return precision, recall, f1
