"""The artifact-graph analysis facade.

A :class:`Workspace` binds one corpus (trajectories, or an
already-partitioned :class:`~repro.model.segmentset.SegmentSet`) to one
:class:`~repro.core.config.TraclusConfig` and materialises every
TRACLUS stage of the partition-and-group framework as a **named,
fingerprint-keyed artifact**:

=================  =====================================================
artifact           contents / downstream consumers
=================  =====================================================
``partition()``    characteristic points, the segment set ``D``, and the
                   resumable Figure-8 scan states (streaming seed)
``eps_graph(eps)`` the ε-neighborhood CSR graph; any ε below the built
                   ε_max is served by filtering stored distances
``entropy_counts`` ``|N_eps|`` per (ε, segment) — entropy curves and the
                   Section 4.4 heuristic (Figures 16/19)
``labels(...)``    Figure-12 labels at any (ε, MinLns), via the shared
                   incremental sweep walk — clusters, Section 5.4 tables
``quality(...)``   QMeasure (Formula 11) at a grid point (Figures 17/20)
``representatives`` Figure-15 representative trajectories per cluster
=================  =====================================================

Every artifact is computed **at most once per configuration
fingerprint** (:mod:`repro.api.fingerprint`): repeated queries hit the
in-memory store, and — when the workspace is opened with a directory —
repeated *processes* hit the npz files on disk
(:mod:`repro.api.cache`).  Because the stages form a dependency graph
(labels need the graph, which needs the partition), a single graph
build at the largest requested ε serves the parameter heuristic, every
labeling, the entropy curves, and the QMeasure figures; the
``two-builds-today`` follow-up of the ROADMAP's sweep note closes here.

Everything a workspace returns is **bitwise identical** to the direct
engine calls it replaces (characteristic points, labels, neighborhood
counts — pinned by ``tests/property/test_workspace_equivalence.py``);
the facade only removes redundant work, never changes results.

When to bypass to the raw engines (see also the README API guide):

* a *single* clustering at known parameters on a corpus you will never
  re-query — ``cluster_segments`` (or ``TRACLUS.fit`` with a forced
  ``"brute"``/``"grid"``/``"rtree"`` ε-engine) skips graph
  materialisation and the edge sort entirely; the default ``fit`` now
  rides the Workspace and pays the sort once to make every later query
  free;
* an ε_max so large the edge list approaches n² — the per-query
  ``"grid"``/``"rtree"`` engines and the streaming
  ``neighborhood_size_counts`` never materialise edges;
* annealed parameter search (``eps_search_method="anneal"``) — probe
  points are data-dependent, so there is nothing to key a cache on.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.cache import ArtifactStore, CacheStats
from repro.api.catalog import Catalog
from repro.api.fingerprint import (
    artifact_key,
    corpus_fingerprint,
    segments_fingerprint,
)
from repro.cluster.neighbor_graph import NeighborGraph
from repro.core.config import SweepConfig, TraclusConfig
from repro.exceptions import TrajectoryError, WorkspaceError
from repro.io.artifacts import pack_ragged, unpack_ragged
from repro.model.cluster import Cluster, clusters_from_labels
from repro.model.result import ClusteringResult
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.obs import NULL_REGISTRY, span
from repro.params.entropy import entropy_from_counts
from repro.params.heuristic import (
    ParameterEstimate,
    default_eps_grid,
    recommend_parameters,
)
from repro.quality.qmeasure import QualityBreakdown, quality_measure
from repro.representative.sweep import (
    RepresentativeConfig,
    generate_all_representatives,
)
from repro.sweep.engine import SweepEngine, SweepResult


def _grid_cells(
    eps_values: np.ndarray, min_lns_values: np.ndarray, labels: np.ndarray
) -> List[List[float]]:
    """Per-cell ``[eps, min_lns, n_clusters, n_noise]`` of one labels
    grid — precomputed at save time so the sqlite catalog (and hence
    every cross-corpus analytics query) never has to open the payload.
    Cluster ids are contiguous ``0..k-1`` with ``-1`` noise, so the
    per-cell maximum is the cluster count minus one."""
    n_clusters = labels.max(axis=2) + 1
    n_noise = (labels < 0).sum(axis=2)
    return [
        [
            float(eps_values[i]),
            float(min_lns_values[j]),
            int(n_clusters[i, j]),
            int(n_noise[i, j]),
        ]
        for i in range(eps_values.size)
        for j in range(min_lns_values.size)
    ]


class PartitionArtifact:
    """Phase-1 output: the segment set ``D``, per-trajectory
    characteristic points, and — when the workspace is bound to
    trajectories — the resumable Figure-8 scan states that let
    :meth:`~repro.stream.pipeline.StreamingTRACLUS.bulk_load` seed a
    streaming session without re-scanning."""

    __slots__ = (
        "segments",
        "characteristic_points",
        "committed",
        "scan_starts",
        "scan_lengths",
        "suppression",
        "corpus_key",
    )

    def __init__(
        self,
        segments: SegmentSet,
        characteristic_points: Optional[List[List[int]]],
        committed: Optional[List[List[int]]] = None,
        scan_starts: Optional[np.ndarray] = None,
        scan_lengths: Optional[np.ndarray] = None,
        suppression: Optional[float] = None,
        corpus_key: Optional[str] = None,
    ):
        self.segments = segments
        self.characteristic_points = characteristic_points
        self.committed = committed
        self.scan_starts = scan_starts
        self.scan_lengths = scan_lengths
        #: Section 4.1.3 constant the scan ran with; ``None`` when the
        #: artifact has no phase-1 provenance (segment-bound).  Stream
        #: seeding validates against it — scan states are only valid at
        #: the suppression that produced them.
        self.suppression = suppression
        #: Fingerprint of the corpus the scan ran over (see
        #: :func:`repro.api.fingerprint.corpus_fingerprint`); stream
        #: seeding compares it so an artifact can never seed a
        #: different corpus's session.
        self.corpus_key = corpus_key

    @property
    def has_scan_states(self) -> bool:
        return self.scan_starts is not None

    def scan_states(self) -> Tuple[List[List[int]], np.ndarray, np.ndarray]:
        """``(committed, starts, lengths)`` exactly as
        :func:`repro.partition.batched.lockstep_scan` returned them."""
        if not self.has_scan_states:
            raise WorkspaceError(
                "this partition artifact has no scan states (segment-"
                "bound workspaces never ran phase 1)"
            )
        return self.committed, self.scan_starts, self.scan_lengths

    def __repr__(self) -> str:
        return (
            f"PartitionArtifact(n_segments={len(self.segments)}, "
            f"scan_states={self.has_scan_states})"
        )


class Workspace:
    """Corpus-bound analysis session over cached TRACLUS artifacts.

    Parameters
    ----------
    trajectories:
        The corpus.  Alternatively build from an already-partitioned
        set with :meth:`from_segments` (figure benchmarks do).
    config:
        Point-independent knobs (distance weights, suppression,
        ``use_weights``, Step-3 threshold, γ); per-query parameters
        (ε, MinLns, grids) are method arguments.
    cache_dir:
        Optional directory for the npz-backed persistent cache; the
        CLI's ``--workspace DIR`` flag is exactly this.
    max_disk_bytes:
        Optional total-size budget for the npz tier.  When set, every
        save triggers an LRU sweep that unlinks the coldest artifacts
        until the directory fits — the knob the multi-corpus serving
        layer (:mod:`repro.serve`) uses to share one bounded cache
        directory across corpora.  ``None`` (default) keeps the
        grow-only behaviour.

    >>> ws = Workspace(trajectories, TraclusConfig())     # doctest: +SKIP
    >>> est = ws.recommend_parameters()                   # builds graph
    >>> labels = ws.labels(est.eps, est.min_lns)          # reuses graph
    >>> q = ws.quality(est.eps, est.min_lns)              # reuses labels
    """

    def __init__(
        self,
        trajectories: Optional[Sequence[Trajectory]] = None,
        config: Optional[TraclusConfig] = None,
        cache_dir: Optional[str] = None,
        max_disk_bytes: Optional[int] = None,
        metrics=None,
        _segments: Optional[SegmentSet] = None,
    ):
        if (trajectories is None) == (_segments is None):
            raise WorkspaceError(
                "bind a workspace to either trajectories or (via "
                "Workspace.from_segments) a segment set"
            )
        self.config = config if config is not None else TraclusConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.store = ArtifactStore(
            cache_dir, max_disk_bytes=max_disk_bytes, metrics=self.metrics
        )
        self._distance = self.config.distance()
        self._engines: Dict[bytes, SweepEngine] = {}
        # Grids materialised this session: (eps tuple, min_lns tuple,
        # threshold, key).  labels()/quality() at a single point first
        # look for a covering grid and slice it instead of walking a
        # one-cell column of their own.
        self._grid_registry: List[Tuple[Tuple[float, ...],
                                        Tuple[float, ...],
                                        Optional[float], str]] = []
        # One lock per (artifact kind, fingerprint key): concurrent
        # builds of the *same* artifact collapse to one compute while
        # distinct keys proceed in parallel.  The meta-lock only guards
        # the registry dict, never a build.
        self._build_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._build_locks_meta = threading.Lock()
        if trajectories is not None:
            trajectories = list(trajectories)
            if not trajectories:
                raise TrajectoryError("a workspace needs at least one trajectory")
            dims = {t.dim for t in trajectories}
            if len(dims) != 1:
                raise TrajectoryError(
                    f"all trajectories must share one dimensionality, "
                    f"got {sorted(dims)}"
                )
            self.trajectories: Optional[List[Trajectory]] = trajectories
            self.corpus_key = corpus_fingerprint(trajectories)
            if self.store.catalog is not None:
                self.store._catalog_call(
                    "register_corpus", self.corpus_key, None,
                    len(trajectories), None,
                )
        else:
            self.trajectories = None
            self.corpus_key = segments_fingerprint(_segments)
            if self.store.catalog is not None:
                self.store._catalog_call(
                    "register_corpus", self.corpus_key, None,
                    None, len(_segments),
                )
            # A segment-bound workspace starts with its partition
            # artifact pre-materialised (phase 1 already happened).
            self.store.put_object(
                "partition",
                self._partition_key(),
                PartitionArtifact(_segments, None),
            )

    @classmethod
    def from_segments(
        cls,
        segments: SegmentSet,
        config: Optional[TraclusConfig] = None,
        cache_dir: Optional[str] = None,
        max_disk_bytes: Optional[int] = None,
        metrics=None,
    ) -> "Workspace":
        """Bind to an already-partitioned segment set (phase 2+ only:
        no characteristic points, no streaming seed, no :meth:`fit`)."""
        return cls(
            config=config, cache_dir=cache_dir,
            max_disk_bytes=max_disk_bytes, metrics=metrics,
            _segments=segments,
        )

    # -- stats / inspection --------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.store.stats

    def _artifact_lock(self, kind: str, key: str) -> threading.Lock:
        """The build lock for one (kind, key) artifact.

        Callers take the fast cache path first and only reach for the
        lock on a miss, then re-check the cache under it (double-checked
        locking): a thread that lost the race finds the winner's object
        and never builds.  Lock acquisition order follows the artifact
        dependency graph (labels -> engine -> graph -> partition), which
        is acyclic, so nested holds cannot deadlock."""
        pair = (kind, key)
        with self._build_locks_meta:
            lock = self._build_locks.get(pair)
            if lock is None:
                lock = self._build_locks[pair] = threading.Lock()
        return lock

    @contextmanager
    def _measure_build(self, stage: str):
        """Wrap one engine build: counts it (``CacheStats.builds`` and
        ``repro_builds_total{stage}``), records wall time
        (``CacheStats.build_seconds`` and
        ``repro_build_seconds{stage}``), opens a ``build:<stage>``
        span in any ambient request trace, and applies the configured
        (result-neutral, fingerprint-excluded) kernel backend for the
        duration of the build."""
        from repro import kernels

        self.stats.count_build(stage)
        self.metrics.counter(
            "repro_builds_total",
            help="Engine builds (cache misses reaching compute) by stage.",
            stage=stage,
        ).inc()
        started = time.perf_counter()
        try:
            with span(f"build:{stage}"):
                with kernels.use_backend(self.config.kernel_backend):
                    yield
        finally:
            elapsed = time.perf_counter() - started
            self.stats.add_build_time(stage, elapsed)
            self.metrics.histogram(
                "repro_build_seconds",
                help="Wall seconds per engine build by stage.",
                stage=stage,
            ).observe(elapsed)

    def artifact_entries(self) -> List[dict]:
        """Persisted artifacts (the ``repro workspace`` inspector)."""
        return self.store.entries()

    def catalog(self) -> Catalog:
        """The sqlite catalog over this workspace's directory — canned
        analytics via :meth:`Catalog.query`, guarded raw SQL via
        :meth:`Catalog.sql`.  Raises for memory-only workspaces (there
        is nothing on disk to index)."""
        if self.store.cache_dir is None:
            raise WorkspaceError(
                "memory-only workspaces have no catalog; open the "
                "workspace with cache_dir to index its artifacts"
            )
        if self.store.catalog is None:
            raise WorkspaceError(
                f"the catalog under {self.store.cache_dir!r} could not "
                f"be opened; see repro.api.catalog.Catalog"
            )
        return self.store.catalog

    # -- keys ----------------------------------------------------------------
    def _distance_parts(self) -> Tuple:
        config = self.config
        return (
            config.w_perp, config.w_par, config.w_theta, config.directed,
        )

    def _partition_key(self) -> str:
        # The phase-1 *engine* (python vs batched) is excluded: both
        # produce bitwise-identical characteristic points.
        return artifact_key(
            [self.corpus_key, "partition", self.config.suppression]
        )

    def _graph_key(self) -> str:
        return artifact_key(
            [self.corpus_key, "graph", self.config.suppression,
             *self._distance_parts()]
        )

    def _counts_key(self, eps_values: np.ndarray) -> str:
        return artifact_key(
            [self.corpus_key, "counts", self.config.suppression,
             *self._distance_parts(), eps_values]
        )

    def _labels_key(
        self,
        eps_values: np.ndarray,
        min_lns_values: np.ndarray,
        cardinality_threshold: Optional[float],
    ) -> str:
        config = self.config
        return artifact_key(
            [self.corpus_key, "labels", config.suppression,
             *self._distance_parts(), config.use_weights,
             cardinality_threshold, eps_values, min_lns_values]
        )

    # -- partition artifact --------------------------------------------------
    def partition(self) -> PartitionArtifact:
        """Phase 1 (Figure 8) over the whole corpus — computed once.

        Runs the lock-step batched scanner so the artifact also carries
        every trajectory's resumable scan state (characteristic points
        are bitwise identical across phase-1 engines, so the engine
        choice is not part of the key)."""
        key = self._partition_key()
        artifact = self.store.get_object("partition", key)
        if artifact is not None:
            return artifact
        with self._artifact_lock("partition", key):
            artifact = self.store.get_object("partition", key)
            if artifact is not None:
                return artifact
            loaded = self.store.load_arrays("partition", key)
            if loaded is not None:
                artifact = self._partition_from_arrays(loaded[0])
            else:
                started = time.perf_counter()
                artifact = self._build_partition()
                self.store.save_arrays(
                    "partition", key, self._partition_to_arrays(artifact),
                    {"kind": "partition", "corpus": self.corpus_key,
                     "suppression": self.config.suppression,
                     "n_segments": len(artifact.segments),
                     "n_trajectories": len(self.trajectories or ()),
                     "build_seconds": time.perf_counter() - started},
                )
            self.store._catalog_call(
                "register_corpus", self.corpus_key, None, None,
                len(artifact.segments),
            )
            self.store.put_object("partition", key, artifact)
            return artifact

    def _build_partition(self) -> PartitionArtifact:
        from repro.model.ragged import RaggedPoints
        from repro.partition.batched import lockstep_scan

        trajectories = self.trajectories
        ragged = RaggedPoints.from_arrays([t.points for t in trajectories])
        with self._measure_build("partition"):
            committed, starts, lengths = lockstep_scan(
                ragged, self.config.suppression
            )
        characteristic_points: List[List[int]] = []
        for row, trajectory in enumerate(trajectories):
            cps = list(committed[row])
            last = len(trajectory) - 1
            if cps[-1] != last:
                cps.append(last)  # line 12: the ending point
            characteristic_points.append(cps)
        segments = SegmentSet.from_partitions(
            trajectories, characteristic_points
        )
        return PartitionArtifact(
            segments,
            characteristic_points,
            committed=[list(c) for c in committed],
            scan_starts=starts,
            scan_lengths=lengths,
            suppression=self.config.suppression,
            corpus_key=self.corpus_key,
        )

    def _partition_to_arrays(
        self, artifact: PartitionArtifact
    ) -> Dict[str, np.ndarray]:
        cps_flat, cps_offsets = pack_ragged(artifact.characteristic_points)
        com_flat, com_offsets = pack_ragged(artifact.committed)
        return {
            "seg_starts": artifact.segments.starts,
            "seg_ends": artifact.segments.ends,
            "seg_traj_ids": artifact.segments.traj_ids,
            "seg_weights": artifact.segments.weights,
            "cps_flat": cps_flat,
            "cps_offsets": cps_offsets,
            "committed_flat": com_flat,
            "committed_offsets": com_offsets,
            "scan_starts": artifact.scan_starts,
            "scan_lengths": artifact.scan_lengths,
        }

    def _partition_from_arrays(
        self, arrays: Dict[str, np.ndarray]
    ) -> PartitionArtifact:
        segments = SegmentSet(
            arrays["seg_starts"], arrays["seg_ends"],
            arrays["seg_traj_ids"], arrays["seg_weights"],
        )
        return PartitionArtifact(
            segments,
            [list(map(int, row)) for row in unpack_ragged(
                arrays["cps_flat"], arrays["cps_offsets"])],
            committed=[list(map(int, row)) for row in unpack_ragged(
                arrays["committed_flat"], arrays["committed_offsets"])],
            scan_starts=arrays["scan_starts"],
            scan_lengths=arrays["scan_lengths"],
            suppression=self.config.suppression,
            corpus_key=self.corpus_key,
        )

    def segments(self) -> SegmentSet:
        """The partition set ``D`` (phase-1 output)."""
        return self.partition().segments

    def characteristic_points(self) -> List[List[int]]:
        artifact = self.partition()
        if artifact.characteristic_points is None:
            raise WorkspaceError(
                "segment-bound workspaces have no characteristic points"
            )
        return artifact.characteristic_points

    # -- ε-graph artifact ----------------------------------------------------
    def _ensure_graph(self, eps: float) -> NeighborGraph:
        """A neighbor graph built at radius >= *eps* (one per distance
        config; it only ever grows — any smaller ε is served by
        filtering the stored edge distances, bitwise identical to a
        fresh build)."""
        key = self._graph_key()
        graph = self.store.get_object("graph", key)
        if graph is not None and graph.eps >= eps:
            return graph
        with self._artifact_lock("graph", key):
            graph = self.store.get_object("graph", key)
            if graph is not None and graph.eps >= eps:
                return graph
            loaded = self.store.load_arrays("graph", key)
            if loaded is not None:
                arrays, meta = loaded
                disk_eps = float(meta["eps"])
                if disk_eps >= eps:
                    graph = NeighborGraph(
                        disk_eps, self._distance, arrays["indptr"],
                        arrays["indices"], arrays["data"],
                    )
                    self.store.put_object("graph", key, graph)
                    return graph
            started = time.perf_counter()
            with self._measure_build("graph"):
                graph = NeighborGraph.build(
                    self.segments(), float(eps), self._distance
                )
            self.store.save_arrays(
                "graph", key,
                {"indptr": graph.indptr, "indices": graph.indices,
                 "data": graph.data},
                {"kind": "graph", "corpus": self.corpus_key, "eps": graph.eps,
                 "n_segments": graph.n_segments, "n_edges": graph.n_edges,
                 "build_seconds": time.perf_counter() - started},
            )
            self.store.put_object("graph", key, graph)
            # Engines hold views of the superseded graph; rebuild from
            # the new one on next use.
            self._engines.clear()
            return graph

    def eps_graph(self, eps: float) -> NeighborGraph:
        """The ε-neighborhood CSR graph at exactly *eps* (a filtered
        view when a larger graph is already cached)."""
        graph = self._ensure_graph(float(eps))
        return graph if graph.eps == float(eps) else graph.restrict(float(eps))

    def graph_builds(self) -> int:
        """Distance-kernel graph builds this session (the fig17-style
        warm-grid assertion reads this)."""
        return self.stats.build_count("graph")

    # -- sweep state ---------------------------------------------------------

    #: Engines kept per distinct ε grid (each holds O(E) sorted-edge and
    #: incidence arrays — the graph itself is shared, so this only caps
    #: the derived views).
    _MAX_ENGINES = 4

    def _engine(self, eps_values: Sequence[float]) -> SweepEngine:
        eps_array = np.asarray(list(eps_values), dtype=np.float64)
        if eps_array.size == 0:
            raise WorkspaceError("eps_values must be non-empty")
        cache_key = eps_array.tobytes()
        engine = self._engines.get(cache_key)
        if engine is not None:
            return engine
        with self._artifact_lock("engine", cache_key.hex()):
            engine = self._engines.get(cache_key)
            if engine is None:
                graph = self._ensure_graph(float(eps_array.max()))
                engine = SweepEngine(
                    self.segments(), eps_array, self._distance, graph=graph,
                    metrics=self.metrics,
                )
                while len(self._engines) >= self._MAX_ENGINES:
                    self._engines.pop(next(iter(self._engines)))
                self._engines[cache_key] = engine
            return engine

    # -- entropy artifact ----------------------------------------------------
    def entropy_counts(self, eps_values: Sequence[float]) -> np.ndarray:
        """``|N_eps(L_i)|`` for every ε in *eps_values* and every
        segment — identical ints to
        :func:`repro.cluster.neighbor_graph.neighborhood_size_counts`,
        served from the shared graph's stored distances."""
        eps_array = np.asarray(list(eps_values), dtype=np.float64)
        key = self._counts_key(eps_array)
        counts = self.store.get_object("counts", key)
        if counts is not None:
            return counts
        with self._artifact_lock("counts", key):
            counts = self.store.get_object("counts", key)
            if counts is not None:
                return counts
            loaded = self.store.load_arrays("counts", key)
            if loaded is not None:
                counts = loaded[0]["counts"]
            else:
                engine = self._engine(eps_array)
                started = time.perf_counter()
                with self._measure_build("counts"):
                    counts = engine.neighborhood_counts()
                counts.setflags(write=False)
                self.store.save_arrays(
                    "counts", key, {"counts": counts, "eps_values": eps_array},
                    {"kind": "counts", "corpus": self.corpus_key,
                     "n_eps": int(eps_array.size),
                     "eps_max": float(eps_array.max()),
                     "build_seconds": time.perf_counter() - started},
                )
            counts.setflags(write=False)
            self.store.put_object("counts", key, counts)
            return counts

    def entropy_curve(
        self, eps_values: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(entropies, avg_sizes)`` over *eps_values* — the Figure
        16/19 curves, bitwise equal to
        :func:`repro.params.entropy.entropy_curve` on the same grid."""
        return entropy_from_counts(self.entropy_counts(eps_values))

    def recommend_parameters(
        self, eps_values: Optional[Sequence[float]] = None
    ) -> ParameterEstimate:
        """The Section 4.4 heuristic with counts served from the shared
        graph (grid search; annealing is inherently uncacheable — call
        :func:`repro.params.heuristic.recommend_parameters` directly)."""
        segments = self.segments()
        grid = (
            np.asarray(list(eps_values), dtype=np.float64)
            if eps_values is not None
            else default_eps_grid(segments)
        )
        return recommend_parameters(
            segments,
            eps_values=grid,
            distance=self._distance,
            method="grid",
            counts=self.entropy_counts(grid),
        )

    # -- label artifacts -----------------------------------------------------
    def labels_grid(
        self,
        eps_values: Sequence[float],
        min_lns_values: Sequence[float],
        executor: str = "serial",
        n_workers: Optional[int] = None,
        cardinality_threshold: Optional[float] = None,
    ) -> np.ndarray:
        """Figure-12 labels at every grid point:
        ``(n_eps, n_min_lns, n_segments)`` int64, each cell bitwise
        identical to an independent ``TRACLUS.fit`` at those
        parameters.  The executor shards MinLns columns and is not part
        of the key (it cannot change results);
        ``cardinality_threshold`` overrides the config's Step-3
        threshold for this grid only (it *is* part of the key)."""
        eps_array = np.asarray(list(eps_values), dtype=np.float64)
        min_lns_array = np.asarray(list(min_lns_values), dtype=np.float64)
        threshold = (
            self.config.cardinality_threshold
            if cardinality_threshold is None
            else float(cardinality_threshold)
        )
        key = self._labels_key(eps_array, min_lns_array, threshold)
        labels = self.store.get_object("labels", key)
        if labels is not None:
            return labels
        with self._artifact_lock("labels", key):
            labels = self.store.get_object("labels", key)
            if labels is not None:
                return labels
            loaded = self.store.load_arrays("labels", key)
            if loaded is not None:
                labels = loaded[0]["labels"]
            else:
                config = self.config
                engine = self._engine(eps_array)
                started = time.perf_counter()
                with self._measure_build("labels"):
                    labels = engine.labels_grid(
                        min_lns_array.tolist(),
                        cardinality_threshold=threshold,
                        use_weights=config.use_weights,
                        executor=executor,
                        n_workers=n_workers,
                    )
                self.store.save_arrays(
                    "labels", key,
                    {"labels": labels, "eps_values": eps_array,
                     "min_lns_values": min_lns_array},
                    {"kind": "labels", "corpus": self.corpus_key,
                     "use_weights": config.use_weights,
                     "grid": [int(eps_array.size), int(min_lns_array.size)],
                     "n_segments": int(labels.shape[2]),
                     "cardinality_threshold": threshold,
                     "cells": _grid_cells(eps_array, min_lns_array, labels),
                     "build_seconds": time.perf_counter() - started},
                )
            labels.setflags(write=False)
            self.store.put_object("labels", key, labels)
            entry = (
                tuple(eps_array.tolist()), tuple(min_lns_array.tolist()),
                threshold, key,
            )
            if entry not in self._grid_registry:
                self._grid_registry.append(entry)
            return labels

    def labels(self, eps: float, min_lns: float) -> np.ndarray:
        """Labels at one (ε, MinLns) point (read-only; ``.copy()`` to
        mutate).  Served by slicing any covering grid already
        materialised this session — grid cells are bitwise identical to
        single-point walks — before falling back to a one-cell grid of
        its own."""
        eps = float(eps)
        min_lns = float(min_lns)
        threshold = self.config.cardinality_threshold
        for grid_eps, grid_min_lns, grid_threshold, key in self._grid_registry:
            if (
                grid_threshold == threshold
                and eps in grid_eps
                and min_lns in grid_min_lns
            ):
                grid = self.store.get_object("labels", key)
                if grid is not None:
                    return grid[
                        grid_eps.index(eps), grid_min_lns.index(min_lns)
                    ]
        return self.labels_grid([eps], [min_lns])[0, 0]

    def clusters(self, eps: float, min_lns: float) -> List[Cluster]:
        """:class:`Cluster` objects at one grid point (no
        representatives — see :meth:`representatives`)."""
        return clusters_from_labels(
            self.labels(eps, min_lns), self.segments()
        )

    # -- quality artifact ----------------------------------------------------
    def quality(self, eps: float, min_lns: float) -> QualityBreakdown:
        """QMeasure (Formula 11) at one grid point, from the cached
        labels."""
        eps_array = np.asarray([eps], dtype=np.float64)
        min_lns_array = np.asarray([min_lns], dtype=np.float64)
        key = artifact_key(
            [self._labels_key(eps_array, min_lns_array,
              self.config.cardinality_threshold), "quality"]
        )
        cached = self.store.get_object("quality", key)
        if cached is not None:
            return cached
        with self._artifact_lock("quality", key):
            cached = self.store.get_object("quality", key)
            if cached is not None:
                return cached
            loaded = self.store.load_arrays("quality", key)
            if loaded is not None:
                arrays = loaded[0]
                breakdown = QualityBreakdown(
                    total_sse=float(arrays["total_sse"]),
                    noise_penalty=float(arrays["noise_penalty"]),
                )
            else:
                segments = self.segments()
                labels = self.labels(eps, min_lns)
                started = time.perf_counter()
                with self._measure_build("quality"):
                    breakdown = quality_measure(
                        clusters_from_labels(labels, segments), segments,
                        labels, self._distance,
                    )
                self.store.save_arrays(
                    "quality", key,
                    {"total_sse": np.float64(breakdown.total_sse),
                     "noise_penalty": np.float64(breakdown.noise_penalty)},
                    {"kind": "quality", "corpus": self.corpus_key,
                     "eps": float(eps), "min_lns": float(min_lns),
                     "qmeasure": breakdown.qmeasure,
                     "build_seconds": time.perf_counter() - started},
                )
            self.store.put_object("quality", key, breakdown)
            return breakdown

    # -- representative artifact ---------------------------------------------
    def representatives(
        self, eps: float, min_lns: float, gamma: Optional[float] = None
    ) -> List[Cluster]:
        """Clusters at one grid point with their Figure-15
        representative trajectories attached."""
        gamma = self.config.gamma if gamma is None else float(gamma)
        eps_array = np.asarray([eps], dtype=np.float64)
        min_lns_array = np.asarray([min_lns], dtype=np.float64)
        key = artifact_key(
            [self._labels_key(eps_array, min_lns_array,
              self.config.cardinality_threshold),
             "representatives", gamma]
        )
        # The cache holds only the immutable polyline arrays; Cluster
        # objects are materialised fresh per call, so a caller mutating
        # one result cannot poison later reads.
        cached = self.store.get_object("representatives", key)
        if cached is None:
            with self._artifact_lock("representatives", key):
                cached = self.store.get_object("representatives", key)
                if cached is None:
                    loaded = self.store.load_arrays("representatives", key)
                    if loaded is not None:
                        cached = (
                            loaded[0]["rep_flat"], loaded[0]["rep_offsets"]
                        )
                    else:
                        clusters = clusters_from_labels(
                            self.labels(eps, min_lns), self.segments()
                        )
                        started = time.perf_counter()
                        with self._measure_build("representatives"):
                            reps = generate_all_representatives(
                                clusters,
                                RepresentativeConfig(
                                    min_lns=float(min_lns), gamma=gamma
                                ),
                            )
                        row_counts = np.array(
                            [rep.shape[0] for rep in reps], dtype=np.int64
                        )
                        offsets = np.zeros(len(reps) + 1, dtype=np.int64)
                        np.cumsum(row_counts, out=offsets[1:])
                        dim = self.segments().dim
                        flat = (
                            np.concatenate(
                                [rep for rep in reps if rep.shape[0]]
                            )
                            if offsets[-1]
                            else np.empty((0, dim), dtype=np.float64)
                        )
                        self.store.save_arrays(
                            "representatives", key,
                            {"rep_flat": flat, "rep_offsets": offsets},
                            {"kind": "representatives",
                             "corpus": self.corpus_key,
                             "eps": float(eps), "min_lns": float(min_lns),
                             "gamma": gamma, "n_clusters": len(reps),
                             "build_seconds": time.perf_counter() - started},
                        )
                        cached = (flat, offsets)
                    for array in cached:
                        array.setflags(write=False)
                    self.store.put_object("representatives", key, cached)
        flat, offsets = cached
        clusters = clusters_from_labels(
            self.labels(eps, min_lns), self.segments()
        )
        for index, cluster in enumerate(clusters):
            cluster.representative = flat[offsets[index]:offsets[index + 1]]
        return clusters

    # -- facades over artifact compositions ------------------------------------
    def fit(self) -> ClusteringResult:
        """The full TRACLUS pipeline (Figure 4) out of cached
        artifacts — what :meth:`TRACLUS.fit
        <repro.core.traclus.TRACLUS.fit>` now wraps."""
        if self.trajectories is None:
            raise WorkspaceError(
                "fit() needs a trajectory-bound workspace (segment-bound "
                "workspaces have no phase-1 provenance)"
            )
        config = self.config
        artifact = self.partition()
        segments = artifact.segments

        eps = config.eps
        min_lns = config.min_lns
        parameters: Dict[str, float] = {}
        if eps is None or min_lns is None:
            if config.eps_search_method == "grid":
                estimate = self.recommend_parameters(config.eps_search_values)
            else:
                # Annealing probes data-dependent ε values; nothing to
                # key a cache on — defer to the raw heuristic.
                estimate = recommend_parameters(
                    segments,
                    eps_values=config.eps_search_values,
                    distance=self._distance,
                    method=config.eps_search_method,
                    neighborhood_method=config.neighborhood_method,
                )
            if eps is None:
                eps = estimate.eps
            if min_lns is None:
                min_lns = estimate.avg_neighborhood_size + 2.0
            parameters["estimated_entropy"] = estimate.entropy
            parameters["estimated_avg_neighborhood"] = (
                estimate.avg_neighborhood_size
            )

        labels = self.labels(eps, min_lns).copy()
        if config.compute_representatives:
            clusters = self.representatives(eps, min_lns)
        else:
            clusters = clusters_from_labels(labels, segments)

        parameters.update({"eps": float(eps), "min_lns": float(min_lns)})
        return ClusteringResult(
            clusters=clusters,
            segments=segments,
            labels=labels,
            trajectories=self.trajectories,
            characteristic_points=artifact.characteristic_points,
            parameters=parameters,
        )

    def sweep(self, sweep: SweepConfig) -> SweepResult:
        """An amortised (ε, MinLns) grid sweep out of cached artifacts —
        what :meth:`TRACLUS.sweep <repro.core.traclus.TRACLUS.sweep>`
        now wraps."""
        if self.trajectories is None:
            raise WorkspaceError(
                "sweep() needs a trajectory-bound workspace; drive the "
                "grid through labels_grid()/entropy_counts() instead"
            )
        artifact = self.partition()
        labels = self.labels_grid(
            sweep.eps_values, sweep.min_lns_values,
            executor=sweep.executor, n_workers=sweep.n_workers,
        )
        counts = self.entropy_counts(sweep.eps_values)
        entropies, avg_sizes = entropy_from_counts(counts)
        # Unordered ε_max-graph edge count straight off the stored
        # distances — no SweepEngine (and hence no edge re-sort) on the
        # warm path where labels and counts came from the cache.
        eps_max = float(max(sweep.eps_values))
        graph = self._ensure_graph(eps_max)
        n_edges = (
            int(np.count_nonzero(graph.data <= eps_max))
            - graph.n_segments
        ) // 2
        return SweepResult(
            eps_values=tuple(float(e) for e in sweep.eps_values),
            min_lns_values=tuple(float(m) for m in sweep.min_lns_values),
            segments=artifact.segments,
            characteristic_points=artifact.characteristic_points,
            labels=labels,
            neighborhood_counts=counts,
            entropies=entropies,
            avg_neighborhood_sizes=avg_sizes,
            n_graph_edges=n_edges,
        )

    def seed_streaming(self, stream_config) -> "object":
        """A :class:`~repro.stream.pipeline.StreamingTRACLUS` session
        seeded from the partition artifact: identical end state to
        feeding the corpus point by point, without re-running phase 1
        (the artifact's scan states restore each trajectory's resumable
        Figure-8 position)."""
        from repro.stream.pipeline import StreamingTRACLUS

        if self.trajectories is None:
            raise WorkspaceError(
                "seed_streaming() needs a trajectory-bound workspace"
            )
        if stream_config.suppression != self.config.suppression:
            raise WorkspaceError(
                f"stream suppression {stream_config.suppression} does not "
                f"match the workspace's {self.config.suppression}; scan "
                f"states would be invalid"
            )
        pipeline = StreamingTRACLUS(stream_config, metrics=self.metrics)
        pipeline.bulk_load(self.trajectories, partition=self.partition())
        return pipeline

    def __repr__(self) -> str:
        bound = (
            f"{len(self.trajectories)} trajectories"
            if self.trajectories is not None
            else "segments"
        )
        cache = self.store.cache_dir or "memory"
        return f"Workspace({bound}, cache={cache!r})"
