"""The two-level artifact cache behind a :class:`~repro.api.Workspace`.

Level 1 is a plain in-process dict of rich objects (``NeighborGraph``,
``SegmentSet``, label arrays) keyed by ``(kind, key)``.  Level 2 — only
when the workspace was opened with a directory — is one npz file per
artifact (:mod:`repro.io.artifacts`), named ``<kind>-<key>.npz``, so a
later CLI invocation or benchmark process starts warm.

The store never interprets payloads; (de)materialising rich objects is
the workspace's job.  It does count traffic (:class:`CacheStats`) —
tests and the cold/warm benchmark assert engine short-circuits through
those counters.

Both tiers evict least-recently-used entries: the object tier caps the
entry count per kind, and the npz tier (when ``max_disk_bytes`` is
set) keeps the directory's total size under a byte budget by unlinking
the coldest files (recency == file mtime, refreshed on every read, so
the ordering is shared across the serving processes that share one
directory).  A file being read is pinned and never a mid-eviction
victim in-process; cross-process, POSIX unlink semantics keep an
already-open reader safe, and a reader that loses the
exists-then-open race treats the vanished file as a plain miss.

Alongside the npz tier the store maintains a sqlite catalog
(:mod:`repro.api.catalog`): every save indexes the artifact's typed
metadata, every eviction retires its rows, and the scan-heavy
consumers — :meth:`ArtifactStore.entries`, the eviction victim query,
``repro workspace stats``/``query`` — read the index instead of
statting files.  A directory whose catalog cannot open (or whose
sqlite gives up mid-session) degrades to the original filesystem
scans; ``Catalog.rebuild()`` re-derives every row from the npz files.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.catalog import Catalog
from repro.exceptions import CatalogError
from repro.io.artifacts import (
    load_artifact,
    load_artifact_meta,
    save_artifact,
)
from repro.obs import NULL_REGISTRY, SIZE_BUCKETS_BYTES, span

#: Artifact kinds in the order the ``repro workspace`` inspector lists
#: them (upstream stages first).
ARTIFACT_KINDS = (
    "partition",
    "graph",
    "counts",
    "labels",
    "quality",
    "representatives",
)


@dataclass
class CacheStats:
    """Traffic counters of one workspace session (not persisted).

    All mutation goes through the ``count_*`` methods, which hold an
    internal lock: workspaces are shared across serving threads, and
    unlocked ``dict`` read-modify-write on :attr:`builds` lost updates
    under contention (two threads both reading ``n`` then writing
    ``n + 1``).  The plain integer fields stay public for reads —
    torn reads are impossible for ints under the GIL, and every test
    asserting exact totals runs after the writers have joined.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    #: Disk lookups that found no file.  Memory-only stores
    #: (``cache_dir is None``) have no disk tier and never count one —
    #: the serving layer's warm-hit-rate metrics ride this.
    misses: int = 0
    #: npz files unlinked by the byte-budget eviction sweep.
    disk_evictions: int = 0
    #: Expensive engine invocations, by stage — the cold/warm benchmark
    #: asserts ``graph_builds == 0`` on a warm grid re-run.
    builds: Dict[str, int] = field(default_factory=dict)
    #: Wall seconds spent inside engine builds, by stage (rides the
    #: same lock as :attr:`builds`; the ``repro workspace stats``
    #: inspector and ``/stats`` surface these).
    build_seconds: Dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count_build(self, stage: str, seconds: Optional[float] = None) -> None:
        with self._lock:
            self.builds[stage] = self.builds.get(stage, 0) + 1
            if seconds is not None:
                self.build_seconds[stage] = (
                    self.build_seconds.get(stage, 0.0) + seconds
                )

    def add_build_time(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.build_seconds[stage] = (
                self.build_seconds.get(stage, 0.0) + seconds
            )

    def build_count(self, stage: str) -> int:
        with self._lock:
            return self.builds.get(stage, 0)

    def builds_snapshot(self) -> Dict[str, int]:
        """A point-in-time copy safe to diff against a later one."""
        with self._lock:
            return dict(self.builds)

    def count_memory_hit(self) -> None:
        with self._lock:
            self.memory_hits += 1

    def count_disk_hit(self) -> None:
        with self._lock:
            self.disk_hits += 1

    def count_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def count_disk_eviction(self) -> None:
        with self._lock:
            self.disk_evictions += 1


class ArtifactStore:
    """``(kind, key) -> (arrays, meta)`` with optional npz persistence."""

    #: In-memory objects kept per kind.  Within one workspace each kind
    #: has a single key per *configuration*, but per-grid kinds (labels,
    #: counts, quality) accumulate one entry per distinct grid — the cap
    #: bounds a sweep-many-grids session; evicted entries recompute (or
    #: reload from disk) on the next request.
    MAX_OBJECTS_PER_KIND = 8

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_disk_bytes: Optional[int] = None,
        metrics=None,
    ):
        self.cache_dir = cache_dir
        #: Total-size budget for the npz tier; ``None`` means grow-only
        #: (the pre-serving behaviour).  Enforced after every save.
        self.max_disk_bytes = max_disk_bytes
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
        # The sqlite catalog (repro.api.catalog) rides every save/evict
        # below; a directory whose catalog cannot open (read-only
        # mount, hostile sqlite build) degrades to the filesystem-scan
        # paths instead of failing artifact traffic.
        self.catalog: Optional[Catalog] = None
        # Insertion order doubles as recency order (oldest first):
        # get/put re-insert on every touch, making eviction true LRU.
        self._memory: Dict[Tuple[str, str], object] = {}
        self._lock = threading.RLock()
        self._pins: Dict[str, int] = {}
        self.stats = CacheStats()
        # Instruments are resolved once here; with the default disabled
        # registry every one is the shared no-op, so the hot path pays
        # a method call and nothing else.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        if cache_dir is not None:
            try:
                self.catalog = Catalog(cache_dir, metrics=self.metrics)
            except CatalogError:
                self.catalog = None
        lookups = "repro_cache_lookups_total"
        lookups_help = "Artifact cache lookups by tier and outcome."
        self._m_memory_hits = self.metrics.counter(
            lookups, help=lookups_help, tier="memory", outcome="hit"
        )
        self._m_disk_hits = self.metrics.counter(
            lookups, help=lookups_help, tier="disk", outcome="hit"
        )
        self._m_misses = self.metrics.counter(
            lookups, help=lookups_help, tier="disk", outcome="miss"
        )
        self._m_evictions = self.metrics.counter(
            "repro_cache_evictions_total",
            help="Artifacts evicted by the disk byte-budget sweep.",
            tier="disk",
        )
        io_name = "repro_cache_io_seconds"
        io_help = "Wall seconds spent loading/saving npz artifacts."
        self._m_load_seconds = self.metrics.histogram(
            io_name, help=io_help, op="load"
        )
        self._m_save_seconds = self.metrics.histogram(
            io_name, help=io_help, op="save"
        )
        bytes_name = "repro_cache_artifact_bytes"
        bytes_help = "npz artifact sizes crossing the disk tier."
        self._m_load_bytes = self.metrics.histogram(
            bytes_name, help=bytes_help, buckets=SIZE_BUCKETS_BYTES, op="load"
        )
        self._m_save_bytes = self.metrics.histogram(
            bytes_name, help=bytes_help, buckets=SIZE_BUCKETS_BYTES, op="save"
        )

    # -- level 1: rich in-process objects ---------------------------------
    def get_object(self, kind: str, key: str):
        with self._lock:
            entry = self._memory.pop((kind, key), None)
            if entry is not None:
                self._memory[(kind, key)] = entry  # refresh recency
        if entry is not None:
            self.stats.count_memory_hit()
            self._m_memory_hits.inc()
        return entry

    def put_object(self, kind: str, key: str, value) -> None:
        with self._lock:
            self._memory.pop((kind, key), None)
            same_kind = [k for k in self._memory if k[0] == kind]
            while len(same_kind) >= self.MAX_OBJECTS_PER_KIND:
                del self._memory[same_kind.pop(0)]  # least recent first
            self._memory[(kind, key)] = value

    def drop_objects(self, kind: str) -> None:
        """Forget every in-memory object of *kind* (disk is untouched)."""
        with self._lock:
            for cache_key in [k for k in self._memory if k[0] == kind]:
                del self._memory[cache_key]

    # -- read pins ---------------------------------------------------------
    def _pin(self, path: str) -> None:
        with self._lock:
            self._pins[path] = self._pins.get(path, 0) + 1

    def _unpin(self, path: str) -> None:
        with self._lock:
            count = self._pins.get(path, 0) - 1
            if count <= 0:
                self._pins.pop(path, None)
            else:
                self._pins[path] = count

    # -- catalog maintenance ------------------------------------------------
    def _catalog_call(self, method: str, *args):
        """Run one catalog write/read, degrading to no-catalog for the
        rest of this store's life if sqlite gives up (the filesystem
        fallbacks below take over; ``rebuild()`` on a later open
        recovers the index)."""
        catalog = self.catalog
        if catalog is None:
            return None
        try:
            return getattr(catalog, method)(*args)
        except CatalogError:
            self.catalog = None
            return None

    # -- level 2: npz files ------------------------------------------------
    def path(self, kind: str, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{kind}-{key}.npz")

    def load_arrays(
        self, kind: str, key: str
    ) -> Optional[Tuple[Dict[str, np.ndarray], dict]]:
        path = self.path(kind, key)
        if path is None:
            # Memory-only store: there is no disk tier to miss.
            return None
        if not os.path.exists(path):
            self.stats.count_miss()
            self._m_misses.inc()
            return None
        self._pin(path)
        started = time.perf_counter()
        try:
            with span("artifact_load", kind=kind):
                arrays, meta = load_artifact(path)
        except FileNotFoundError:
            # Lost the exists-then-open race against a concurrent
            # eviction (another process's budget sweep) — a plain miss.
            self.stats.count_miss()
            self._m_misses.inc()
            return None
        finally:
            self._unpin(path)
        self._m_load_seconds.observe(time.perf_counter() - started)
        if self.max_disk_bytes is not None:
            # Budgeted stores refresh mtime on read — the recency
            # signal eviction sorts on, visible to every process
            # sharing the directory.  Grow-only stores leave mtimes
            # alone (warm re-runs are pure reads; tests pin that).
            self._touch(path)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:  # pragma: no cover - concurrently evicted
                pass
            else:
                self._catalog_call("touch", os.path.basename(path), mtime)
        self.stats.count_disk_hit()
        self._m_disk_hits.inc()
        if self.metrics.enabled:
            try:
                self._m_load_bytes.observe(os.path.getsize(path))
            except OSError:  # pragma: no cover - concurrently evicted
                pass
        return arrays, meta

    def save_arrays(
        self, kind: str, key: str, arrays: Dict[str, np.ndarray], meta: dict
    ) -> None:
        path = self.path(kind, key)
        if path is None:
            return
        started = time.perf_counter()
        with span("artifact_save", kind=kind):
            save_artifact(path, arrays, meta)
        self._m_save_seconds.observe(time.perf_counter() - started)
        try:
            stat = os.stat(path)
        except OSError:  # pragma: no cover - concurrently evicted
            stat = None
        if stat is not None:
            if self.metrics.enabled:
                self._m_save_bytes.observe(stat.st_size)
            # File first, row second: a crash between the two leaves an
            # unindexed file (recovered by rebuild()), never a row
            # pointing at nothing.
            self._catalog_call(
                "index_artifact", os.path.basename(path), kind, key,
                stat.st_size, stat.st_mtime, meta,
            )
        self.enforce_disk_budget()

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh a file's mtime — the cross-process recency signal the
        byte-budget eviction sorts on."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - concurrently evicted
            pass

    def disk_bytes(self) -> int:
        """Total size of the npz tier right now (0 when memory-only)."""
        if self.cache_dir is None:
            return 0
        total = 0
        for name in os.listdir(self.cache_dir):
            if not name.endswith(".npz"):
                continue
            try:
                total += os.path.getsize(os.path.join(self.cache_dir, name))
            except OSError:
                continue  # vanished under a concurrent eviction
        return total

    def enforce_disk_budget(self) -> int:
        """Unlink coldest-first npz files until the directory fits
        ``max_disk_bytes``; returns how many were evicted.  Pinned
        (mid-read) files are never victims; a file another process is
        already reading survives its unlink (POSIX keeps the open fd
        valid)."""
        if self.cache_dir is None or self.max_disk_bytes is None:
            return 0
        candidates = self._catalog_call("eviction_candidates")
        if candidates is None:
            # No catalog (open failed, or it degraded mid-session):
            # the original listdir+stat scan.
            candidates = []
            for name in os.listdir(self.cache_dir):
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(self.cache_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                candidates.append((stat.st_mtime, stat.st_size, name))
            candidates.sort()  # coldest mtime first
        total = sum(size for _, size, _ in candidates)
        evicted = 0
        for _, size, name in candidates:
            if total <= self.max_disk_bytes:
                break
            path = os.path.join(self.cache_dir, name)
            with self._lock:
                if self._pins.get(path, 0) > 0:
                    continue  # a reader holds it — never a mid-read victim
            try:
                os.unlink(path)
            except FileNotFoundError:
                # Another process won the race — its sweep (or ours,
                # below) must still retire the row.
                self._catalog_call("record_eviction", name)
                total -= size
                continue
            except OSError:
                continue
            self._catalog_call("record_eviction", name)
            total -= size
            evicted += 1
            self.stats.count_disk_eviction()
            self._m_evictions.inc()
        return evicted

    # -- inspection --------------------------------------------------------
    def entries(self) -> List[dict]:
        """Every persisted artifact: kind, key, file size, metadata.
        Sorted by pipeline stage then name (the ``repro workspace``
        inspector prints this)."""
        if self.cache_dir is None:
            return []
        listing = {
            name
            for name in os.listdir(self.cache_dir)
            if name.endswith(".npz")
        }
        if self.catalog is not None:
            indexed = self._catalog_call("files")
            if indexed is not None and indexed != listing:
                # Files written around the store (raw save_artifact,
                # another torn process) or rows whose file vanished:
                # re-derive the index, then serve from it.
                self._catalog_call("rebuild")
            rows = self._catalog_call("entries", ARTIFACT_KINDS)
            if rows is not None:
                return rows
        rows: List[dict] = []
        for name in sorted(listing):
            if not name.endswith(".npz"):
                continue
            kind, _, rest = name.partition("-")
            path = os.path.join(self.cache_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                # Evicted between listdir and stat by a concurrent
                # budget sweep — skip rather than crash the inspector.
                continue
            try:
                meta = load_artifact_meta(path)
            except FileNotFoundError:
                continue  # evicted between stat and open
            except (OSError, ValueError):  # pragma: no cover - corrupt file
                meta = {"error": "unreadable"}
            rows.append(
                {
                    "kind": kind,
                    "key": rest[:-len(".npz")],
                    "file": name,
                    "bytes": size,
                    "meta": meta,
                }
            )
        order = {kind: rank for rank, kind in enumerate(ARTIFACT_KINDS)}
        rows.sort(key=lambda row: (order.get(row["kind"], 99), row["file"]))
        return rows
