"""The two-level artifact cache behind a :class:`~repro.api.Workspace`.

Level 1 is a plain in-process dict of rich objects (``NeighborGraph``,
``SegmentSet``, label arrays) keyed by ``(kind, key)``.  Level 2 — only
when the workspace was opened with a directory — is one npz file per
artifact (:mod:`repro.io.artifacts`), named ``<kind>-<key>.npz``, so a
later CLI invocation or benchmark process starts warm.

The store never interprets payloads; (de)materialising rich objects is
the workspace's job.  It does count traffic (:class:`CacheStats`) —
tests and the cold/warm benchmark assert engine short-circuits through
those counters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.io.artifacts import (
    load_artifact,
    load_artifact_meta,
    save_artifact,
)

#: Artifact kinds in the order the ``repro workspace`` inspector lists
#: them (upstream stages first).
ARTIFACT_KINDS = (
    "partition",
    "graph",
    "counts",
    "labels",
    "quality",
    "representatives",
)


@dataclass
class CacheStats:
    """Traffic counters of one workspace session (not persisted)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    #: Expensive engine invocations, by stage — the cold/warm benchmark
    #: asserts ``graph_builds == 0`` on a warm grid re-run.
    builds: Dict[str, int] = field(default_factory=dict)

    def count_build(self, stage: str) -> None:
        self.builds[stage] = self.builds.get(stage, 0) + 1

    def build_count(self, stage: str) -> int:
        return self.builds.get(stage, 0)


class ArtifactStore:
    """``(kind, key) -> (arrays, meta)`` with optional npz persistence."""

    #: In-memory objects kept per kind.  Within one workspace each kind
    #: has a single key per *configuration*, but per-grid kinds (labels,
    #: counts, quality) accumulate one entry per distinct grid — the cap
    #: bounds a sweep-many-grids session; evicted entries recompute (or
    #: reload from disk) on the next request.
    MAX_OBJECTS_PER_KIND = 8

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
        self._memory: Dict[Tuple[str, str], object] = {}
        self.stats = CacheStats()

    # -- level 1: rich in-process objects ---------------------------------
    def get_object(self, kind: str, key: str):
        entry = self._memory.get((kind, key))
        if entry is not None:
            self.stats.memory_hits += 1
        return entry

    def put_object(self, kind: str, key: str, value) -> None:
        same_kind = [k for k in self._memory if k[0] == kind and k[1] != key]
        while len(same_kind) >= self.MAX_OBJECTS_PER_KIND:
            del self._memory[same_kind.pop(0)]  # oldest first
        self._memory[(kind, key)] = value

    def drop_objects(self, kind: str) -> None:
        """Forget every in-memory object of *kind* (disk is untouched)."""
        for cache_key in [k for k in self._memory if k[0] == kind]:
            del self._memory[cache_key]

    # -- level 2: npz files ------------------------------------------------
    def path(self, kind: str, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{kind}-{key}.npz")

    def load_arrays(
        self, kind: str, key: str
    ) -> Optional[Tuple[Dict[str, np.ndarray], dict]]:
        path = self.path(kind, key)
        if path is None or not os.path.exists(path):
            self.stats.misses += 1
            return None
        arrays, meta = load_artifact(path)
        self.stats.disk_hits += 1
        return arrays, meta

    def save_arrays(
        self, kind: str, key: str, arrays: Dict[str, np.ndarray], meta: dict
    ) -> None:
        path = self.path(kind, key)
        if path is None:
            return
        save_artifact(path, arrays, meta)

    # -- inspection --------------------------------------------------------
    def entries(self) -> List[dict]:
        """Every persisted artifact: kind, key, file size, metadata.
        Sorted by pipeline stage then name (the ``repro workspace``
        inspector prints this)."""
        if self.cache_dir is None:
            return []
        rows: List[dict] = []
        for name in sorted(os.listdir(self.cache_dir)):
            if not name.endswith(".npz"):
                continue
            kind, _, rest = name.partition("-")
            path = os.path.join(self.cache_dir, name)
            try:
                meta = load_artifact_meta(path)
            except (OSError, ValueError):  # pragma: no cover - corrupt file
                meta = {"error": "unreadable"}
            rows.append(
                {
                    "kind": kind,
                    "key": rest[:-len(".npz")],
                    "file": name,
                    "bytes": os.path.getsize(path),
                    "meta": meta,
                }
            )
        order = {kind: rank for rank, kind in enumerate(ARTIFACT_KINDS)}
        rows.sort(key=lambda row: (order.get(row["kind"], 99), row["file"]))
        return rows
