"""A sqlite catalog over the npz artifact store.

The store (:mod:`repro.api.cache`) can answer "give me artifact X" but
not "which (ε, MinLns) cells across all cached corpora have ≥ k
clusters" without loading every payload.  This module maintains that
answer as a live index — ``catalog.sqlite`` next to the npz files —
updated incrementally through the store's save/evict paths rather than
rebuilt by scanning:

``artifacts``
    one row per npz file: kind, fingerprint key, corpus fingerprint,
    the config knobs split into typed columns (ε, MinLns,
    ``use_weights``, γ, suppression, grid shape), byte size, mtime,
    and the engine build seconds that produced it.
``cells``
    one row per (ε, MinLns) cell of every cached labels grid: cluster
    count, noise count, segment count, and — once the matching quality
    artifact lands — QMeasure.  This is the table the cross-corpus
    analytics (``repro workspace query``, ``GET /v1/query``) hit.
``corpora``
    corpus fingerprints with their human names (the serve layer
    registers spec names) and sizes.

Concurrency: WAL journal mode, so any number of reader processes
(query CLIs, the serve front-end) proceed while one writer commits;
writes take an in-process lock plus a ``BEGIN IMMEDIATE`` transaction
with a generous busy timeout, so the multi-process eviction stress in
``tests/api/test_catalog_consistency.py`` serialises cleanly.  Every
row is derivable from ``(os.stat, npz meta)`` alone, so
:meth:`Catalog.rebuild` recovers a cold or torn catalog by re-scanning
the directory — reading only each file's lazily-decompressed
``__meta__`` member, never a payload — and converges to the same rows
the incremental path wrote.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import CatalogError
from repro.io.artifacts import load_artifact_meta
from repro.obs import NULL_REGISTRY

#: File name of the catalog database inside a workspace directory.
CATALOG_FILENAME = "catalog.sqlite"

#: Bumped on any schema change; an on-disk catalog with a different
#: ``user_version`` is dropped and rebuilt from the npz files.
SCHEMA_VERSION = 1

#: Seconds a writer waits on another process's transaction before
#: giving up (sqlite busy timeout).
BUSY_TIMEOUT_SECONDS = 10.0

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS artifacts (
        file TEXT PRIMARY KEY,
        kind TEXT NOT NULL,
        key TEXT NOT NULL,
        corpus TEXT,
        bytes INTEGER NOT NULL,
        mtime REAL NOT NULL,
        build_seconds REAL,
        suppression REAL,
        eps REAL,
        min_lns REAL,
        use_weights INTEGER,
        gamma REAL,
        n_segments INTEGER,
        n_eps INTEGER,
        n_min_lns INTEGER,
        qmeasure REAL,
        meta TEXT
    )
    """,
    "CREATE INDEX IF NOT EXISTS artifacts_kind ON artifacts(kind)",
    "CREATE INDEX IF NOT EXISTS artifacts_corpus ON artifacts(corpus)",
    "CREATE INDEX IF NOT EXISTS artifacts_mtime ON artifacts(mtime)",
    """
    CREATE TABLE IF NOT EXISTS cells (
        file TEXT NOT NULL,
        corpus TEXT,
        eps REAL NOT NULL,
        min_lns REAL NOT NULL,
        n_clusters INTEGER NOT NULL,
        n_noise INTEGER NOT NULL,
        n_segments INTEGER NOT NULL,
        qmeasure REAL,
        PRIMARY KEY (file, eps, min_lns)
    )
    """,
    "CREATE INDEX IF NOT EXISTS cells_grid ON cells(corpus, eps, min_lns)",
    """
    CREATE TABLE IF NOT EXISTS corpora (
        fingerprint TEXT PRIMARY KEY,
        name TEXT,
        n_trajectories INTEGER,
        n_segments INTEGER,
        first_seen REAL,
        last_seen REAL
    )
    """,
)

#: meta keys lifted into typed columns (same name in both).
_KNOB_COLUMNS = (
    "suppression",
    "eps",
    "min_lns",
    "gamma",
    "n_segments",
    "n_eps",
    "n_min_lns",
    "qmeasure",
    "build_seconds",
)

_OPS_NAME = "repro_catalog_ops_total"
_OPS_HELP = "Catalog operations by op (index/evict/touch/rebuild/query)."
_SECONDS_NAME = "repro_catalog_op_seconds"
_SECONDS_HELP = "Wall seconds per catalog operation by op."


class Catalog:
    """The sqlite index of one workspace directory.

    Open via :meth:`repro.api.Workspace.catalog` (or directly with the
    directory); reads are :meth:`query` (named canned queries) and
    :meth:`sql` (guarded raw SQL over a read-only connection).  The
    write methods are called by :class:`~repro.api.cache.ArtifactStore`
    — user code should never need them.
    """

    def __init__(self, cache_dir: str, metrics=None):
        self.cache_dir = cache_dir
        self.path = os.path.join(cache_dir, CATALOG_FILENAME)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                self.path,
                timeout=BUSY_TIMEOUT_SECONDS,
                isolation_level=None,  # explicit BEGIN IMMEDIATE below
                check_same_thread=False,
            )
            self._configure()
        except sqlite3.Error as exc:
            raise CatalogError(
                f"cannot open catalog at {self.path!r}: {exc}"
            ) from exc
        # A cold catalog (fresh db, or schema bump) over a directory
        # that already holds artifacts: adopt them.
        if not self._any_rows() and self._npz_names():
            self.rebuild()

    def _configure(self) -> None:
        conn = self._conn
        # WAL lets readers proceed under a writer; on filesystems that
        # refuse it sqlite reports the old mode — keep going.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, SCHEMA_VERSION):
            # Unknown (newer/older) schema: drop and re-derive — every
            # row is recoverable from the npz files.
            for table in ("artifacts", "cells", "corpora"):
                conn.execute(f"DROP TABLE IF EXISTS {table}")
        for statement in _SCHEMA:
            conn.execute(statement)
        if version != SCHEMA_VERSION:
            conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")

    # -- bookkeeping ---------------------------------------------------------
    @contextmanager
    def _timed(self, op: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.counter(_OPS_NAME, help=_OPS_HELP, op=op).inc()
            self.metrics.histogram(
                _SECONDS_NAME, help=_SECONDS_HELP, op=op
            ).observe(time.perf_counter() - started)

    @contextmanager
    def _write(self):
        """One serialised write transaction (in-process lock +
        ``BEGIN IMMEDIATE`` so the cross-process write lock is taken up
        front instead of deadlocking on upgrade)."""
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.Error as exc:
                raise CatalogError(f"catalog write failed: {exc}") from exc
            try:
                yield self._conn
            except sqlite3.Error as exc:
                self._conn.execute("ROLLBACK")
                raise CatalogError(f"catalog write failed: {exc}") from exc
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            else:
                self._conn.execute("COMMIT")

    def _any_rows(self) -> bool:
        row = self._conn.execute("SELECT 1 FROM artifacts LIMIT 1").fetchone()
        return row is not None

    def _npz_names(self) -> Set[str]:
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return set()
        return {name for name in names if name.endswith(".npz")}

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass

    # -- write paths (driven by ArtifactStore) -------------------------------
    def index_artifact(
        self,
        file: str,
        kind: str,
        key: str,
        size: int,
        mtime: float,
        meta: Optional[dict],
    ) -> None:
        """Upsert one artifact row (and its grid cells, for labels
        artifacts) after the npz file hit the disk."""
        meta = meta if isinstance(meta, dict) else {}
        with self._timed("index"), self._write() as conn:
            self._index_one(conn, file, kind, key, size, mtime, meta)

    def _index_one(
        self, conn, file: str, kind: str, key: str,
        size: int, mtime: float, meta: dict,
    ) -> None:
        knobs = {column: _number(meta.get(column)) for column in _KNOB_COLUMNS}
        grid = meta.get("grid")
        if isinstance(grid, (list, tuple)) and len(grid) == 2:
            knobs["n_eps"] = _number(grid[0])
            knobs["n_min_lns"] = _number(grid[1])
        use_weights = meta.get("use_weights")
        corpus = meta.get("corpus")
        conn.execute(
            "INSERT OR REPLACE INTO artifacts (file, kind, key, corpus,"
            " bytes, mtime, build_seconds, suppression, eps, min_lns,"
            " use_weights, gamma, n_segments, n_eps, n_min_lns, qmeasure,"
            " meta) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            (
                file, kind, key,
                corpus if isinstance(corpus, str) else None,
                int(size), float(mtime),
                knobs["build_seconds"], knobs["suppression"], knobs["eps"],
                knobs["min_lns"],
                None if use_weights is None else int(bool(use_weights)),
                knobs["gamma"], _integer(knobs["n_segments"]),
                _integer(knobs["n_eps"]), _integer(knobs["n_min_lns"]),
                knobs["qmeasure"],
                json.dumps(meta, sort_keys=True, default=str),
            ),
        )
        if kind == "labels":
            self._index_cells(conn, file, meta)
        elif kind == "quality" and knobs["qmeasure"] is not None:
            # Backfill the matching grid cells (order-independent with
            # the labels side: whichever lands second completes the row).
            conn.execute(
                "UPDATE cells SET qmeasure=? WHERE corpus IS ?"
                " AND eps=? AND min_lns=?",
                (knobs["qmeasure"], meta.get("corpus"),
                 knobs["eps"], knobs["min_lns"]),
            )

    def _index_cells(self, conn, file: str, meta: dict) -> None:
        conn.execute("DELETE FROM cells WHERE file=?", (file,))
        cells = meta.get("cells")
        if not isinstance(cells, (list, tuple)):
            return  # pre-catalog labels artifact: no per-cell stats
        corpus = meta.get("corpus")
        n_segments = _integer(_number(meta.get("n_segments"))) or 0
        rows = []
        for cell in cells:
            try:
                eps, min_lns, n_clusters, n_noise = cell
            except (TypeError, ValueError):
                continue
            rows.append(
                (file, corpus, float(eps), float(min_lns),
                 int(n_clusters), int(n_noise), n_segments)
            )
        conn.executemany(
            "INSERT OR REPLACE INTO cells (file, corpus, eps, min_lns,"
            " n_clusters, n_noise, n_segments) VALUES (?,?,?,?,?,?,?)",
            rows,
        )
        # Adopt QMeasure from quality artifacts already indexed.
        conn.execute(
            "UPDATE cells SET qmeasure = ("
            "  SELECT a.qmeasure FROM artifacts a WHERE a.kind='quality'"
            "  AND a.corpus IS cells.corpus AND a.eps=cells.eps"
            "  AND a.min_lns=cells.min_lns)"
            " WHERE file=? AND qmeasure IS NULL",
            (file,),
        )

    def record_eviction(self, file: str) -> None:
        """Drop an artifact's rows after its npz file was unlinked."""
        with self._timed("evict"), self._write() as conn:
            conn.execute("DELETE FROM artifacts WHERE file=?", (file,))
            conn.execute("DELETE FROM cells WHERE file=?", (file,))

    def touch(self, file: str, mtime: float) -> None:
        """Mirror a read-refreshed file mtime (the recency signal the
        byte-budget eviction orders by)."""
        with self._timed("touch"), self._write() as conn:
            conn.execute(
                "UPDATE artifacts SET mtime=? WHERE file=?",
                (float(mtime), file),
            )

    def register_corpus(
        self,
        fingerprint: str,
        name: Optional[str] = None,
        n_trajectories: Optional[int] = None,
        n_segments: Optional[int] = None,
    ) -> None:
        """Upsert corpus metadata, merging non-``None`` fields.

        Write-free when nothing changed — warm re-runs over an existing
        directory stay pure reads (``last_seen`` therefore records the
        last *metadata change*, not the last open)."""
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT name, n_trajectories, n_segments FROM corpora"
                    " WHERE fingerprint=?",
                    (fingerprint,),
                ).fetchone()
            except sqlite3.Error as exc:
                raise CatalogError(f"catalog read failed: {exc}") from exc
        merged = (
            name if name is not None else (row and row[0]),
            n_trajectories if n_trajectories is not None else (row and row[1]),
            n_segments if n_segments is not None else (row and row[2]),
        )
        if row is not None and tuple(row) == merged:
            return
        now = time.time()
        with self._timed("index"), self._write() as conn:
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO corpora (fingerprint, name,"
                    " n_trajectories, n_segments, first_seen, last_seen)"
                    " VALUES (?,?,?,?,?,?)",
                    (fingerprint, *merged, now, now),
                )
            else:
                conn.execute(
                    "UPDATE corpora SET name=?, n_trajectories=?,"
                    " n_segments=?, last_seen=? WHERE fingerprint=?",
                    (*merged, now, fingerprint),
                )

    # -- recovery ------------------------------------------------------------
    def rebuild(self) -> int:
        """Re-derive ``artifacts`` and ``cells`` from the npz files
        (``corpora`` keeps its rows — names are not recoverable from
        disk).  Reads only each file's ``__meta__`` member, never a
        payload.  Returns the number of artifacts indexed."""
        with self._timed("rebuild"):
            rows: List[Tuple[str, str, str, int, float, dict]] = []
            for name in sorted(self._npz_names()):
                path = os.path.join(self.cache_dir, name)
                kind, _, rest = name.partition("-")
                key = rest[: -len(".npz")]
                try:
                    stat = os.stat(path)
                    meta = load_artifact_meta(path)
                except (OSError, FileNotFoundError):
                    continue  # vanished under a concurrent eviction
                except ValueError:  # pragma: no cover - corrupt file
                    meta = {"error": "unreadable"}
                    stat = os.stat(path)
                if not isinstance(meta, dict):
                    meta = {}
                rows.append(
                    (name, kind, key, stat.st_size, stat.st_mtime, meta)
                )
            with self._write() as conn:
                conn.execute("DELETE FROM artifacts")
                conn.execute("DELETE FROM cells")
                for name, kind, key, size, mtime, meta in rows:
                    self._index_one(conn, name, kind, key, size, mtime, meta)
            return len(rows)

    # -- store-facing reads --------------------------------------------------
    def _read(self, statement: str, params: Sequence = ()) -> List[tuple]:
        with self._lock:
            try:
                return self._conn.execute(statement, tuple(params)).fetchall()
            except sqlite3.Error as exc:
                raise CatalogError(f"catalog read failed: {exc}") from exc

    def files(self) -> Set[str]:
        """Every indexed npz file name."""
        return {row[0] for row in self._read("SELECT file FROM artifacts")}

    def total_bytes(self) -> int:
        row = self._read("SELECT COALESCE(SUM(bytes), 0) FROM artifacts")
        return int(row[0][0])

    def eviction_candidates(self) -> List[Tuple[float, int, str]]:
        """``(mtime, bytes, file)`` coldest first — the byte-budget
        sweep's victim order, as one query instead of listdir+stat."""
        return [
            (float(mtime), int(size), file)
            for file, size, mtime in self._read(
                "SELECT file, bytes, mtime FROM artifacts ORDER BY mtime"
            )
        ]

    def entries(self, kind_order: Sequence[str] = ()) -> List[dict]:
        """The ``ArtifactStore.entries()`` rows, served from the index
        (no stat, no npz open)."""
        rows = [
            {
                "kind": kind,
                "key": key,
                "file": file,
                "bytes": int(size),
                "meta": _load_meta_json(meta),
            }
            for file, kind, key, size, meta in self._read(
                "SELECT file, kind, key, bytes, meta FROM artifacts"
            )
        ]
        order = {kind: rank for rank, kind in enumerate(kind_order)}
        rows.sort(key=lambda row: (order.get(row["kind"], 99), row["file"]))
        return rows

    # -- the query surface ---------------------------------------------------
    def query(self, name: str, **filters) -> List[dict]:
        """Run a named canned query; returns a list of dict rows.

        ========== ==========================================================
        name       filters
        ========== ==========================================================
        artifacts  ``kind=``, ``corpus=`` (fingerprint or registered name),
                   ``limit=``
        cells      ``corpus=``, ``min_clusters=``, ``max_noise=`` (noise
                   fraction ceiling), ``eps=``, ``min_lns=``, ``limit=``
        corpora    ``limit=``
        kinds      ``limit=``
        ========== ==========================================================
        """
        builder = _CANNED.get(name)
        if builder is None:
            raise CatalogError(
                f"unknown canned query {name!r}; available:"
                f" {', '.join(sorted(_CANNED))}"
            )
        remaining = dict(filters)
        statement, params = builder(remaining)
        statement, params = _apply_limit(statement, params, remaining)
        if remaining:
            raise CatalogError(
                f"canned query {name!r} does not accept"
                f" {', '.join(sorted(remaining))}"
            )
        with self._timed("query"):
            rows = self._read_dicts(statement, params)
        return rows

    def _read_dicts(self, statement: str, params: Sequence) -> List[dict]:
        with self._lock:
            try:
                cursor = self._conn.execute(statement, tuple(params))
                columns = [item[0] for item in cursor.description]
                return [dict(zip(columns, row)) for row in cursor.fetchall()]
            except sqlite3.Error as exc:
                raise CatalogError(f"catalog read failed: {exc}") from exc

    def sql(self, statement: str, params: Sequence = ()) -> List[dict]:
        """Run one read-only SELECT over a fresh ``mode=ro`` connection.

        The guard is belt and braces: the statement must be a single
        SELECT/WITH, and the connection itself cannot write even if the
        guard were fooled."""
        text = statement.strip()
        if text.endswith(";"):
            text = text[:-1].rstrip()
        if not text or ";" in text:
            raise CatalogError("raw SQL must be exactly one statement")
        head = text.lstrip("(").split(None, 1)[0].upper() if text else ""
        if head not in ("SELECT", "WITH"):
            raise CatalogError(
                "raw SQL is read-only: statement must start with"
                " SELECT or WITH"
            )
        with self._timed("sql"):
            try:
                conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro",
                    uri=True,
                    timeout=BUSY_TIMEOUT_SECONDS,
                )
            except sqlite3.Error as exc:
                raise CatalogError(
                    f"cannot open read-only catalog: {exc}"
                ) from exc
            try:
                cursor = conn.execute(text, tuple(params))
                columns = [item[0] for item in cursor.description or ()]
                return [dict(zip(columns, row)) for row in cursor.fetchall()]
            except sqlite3.Error as exc:
                raise CatalogError(f"raw SQL failed: {exc}") from exc
            finally:
                conn.close()


def _number(value) -> Optional[float]:
    if value is None or isinstance(value, bool):
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _integer(value: Optional[float]) -> Optional[int]:
    return None if value is None else int(value)


def _load_meta_json(text) -> dict:
    if not text:
        return {}
    try:
        meta = json.loads(text)
    except ValueError:  # pragma: no cover - hand-edited catalog
        return {}
    return meta if isinstance(meta, dict) else {}


def _apply_limit(
    statement: str, params: List, filters: Dict
) -> Tuple[str, List]:
    limit = filters.pop("limit", None)
    if limit is not None:
        statement += " LIMIT ?"
        params = list(params) + [int(limit)]
    return statement, list(params)


def _corpus_clause(
    filters: Dict, clauses: List[str], params: List, column: str
) -> None:
    corpus = filters.pop("corpus", None)
    if corpus is not None:
        clauses.append(f"({column} = ? OR co.name = ?)")
        params.extend([corpus, corpus])


def _canned_artifacts(filters: Dict) -> Tuple[str, List]:
    clauses: List[str] = []
    params: List = []
    kind = filters.pop("kind", None)
    if kind is not None:
        clauses.append("a.kind = ?")
        params.append(kind)
    _corpus_clause(filters, clauses, params, "a.corpus")
    statement = (
        "SELECT a.file AS file, a.kind AS kind, a.key AS key,"
        " a.corpus AS corpus, co.name AS corpus_name, a.bytes AS bytes,"
        " a.mtime AS mtime, a.build_seconds AS build_seconds,"
        " a.eps AS eps, a.min_lns AS min_lns, a.n_eps AS n_eps,"
        " a.n_min_lns AS n_min_lns, a.qmeasure AS qmeasure"
        " FROM artifacts a LEFT JOIN corpora co"
        " ON co.fingerprint = a.corpus"
    )
    if clauses:
        statement += " WHERE " + " AND ".join(clauses)
    return statement + " ORDER BY a.kind, a.file", params


def _canned_cells(filters: Dict) -> Tuple[str, List]:
    clauses: List[str] = []
    params: List = []
    _corpus_clause(filters, clauses, params, "c.corpus")
    min_clusters = filters.pop("min_clusters", None)
    if min_clusters is not None:
        clauses.append("c.n_clusters >= ?")
        params.append(int(min_clusters))
    max_noise = filters.pop("max_noise", None)
    if max_noise is not None:
        clauses.append(
            "CAST(c.n_noise AS REAL) / MAX(c.n_segments, 1) <= ?"
        )
        params.append(float(max_noise))
    for column in ("eps", "min_lns"):
        value = filters.pop(column, None)
        if value is not None:
            clauses.append(f"c.{column} = ?")
            params.append(float(value))
    statement = (
        "SELECT c.file AS file, c.corpus AS corpus,"
        " co.name AS corpus_name, c.eps AS eps, c.min_lns AS min_lns,"
        " c.n_clusters AS n_clusters, c.n_noise AS n_noise,"
        " c.n_segments AS n_segments,"
        " CAST(c.n_noise AS REAL) / MAX(c.n_segments, 1)"
        "   AS noise_fraction,"
        " c.qmeasure AS qmeasure"
        " FROM cells c LEFT JOIN corpora co ON co.fingerprint = c.corpus"
    )
    if clauses:
        statement += " WHERE " + " AND ".join(clauses)
    return statement + " ORDER BY c.corpus, c.eps, c.min_lns, c.file", params


def _canned_corpora(filters: Dict) -> Tuple[str, List]:
    statement = (
        "SELECT co.fingerprint AS fingerprint, co.name AS name,"
        " co.n_trajectories AS n_trajectories,"
        " co.n_segments AS n_segments,"
        " COUNT(a.file) AS n_artifacts,"
        " COALESCE(SUM(a.bytes), 0) AS bytes"
        " FROM corpora co LEFT JOIN artifacts a ON a.corpus = co.fingerprint"
        " GROUP BY co.fingerprint ORDER BY co.name, co.fingerprint"
    )
    return statement, []


def _canned_kinds(filters: Dict) -> Tuple[str, List]:
    statement = (
        "SELECT kind, COUNT(*) AS n_artifacts,"
        " COALESCE(SUM(bytes), 0) AS bytes,"
        " COALESCE(SUM(build_seconds), 0.0) AS build_seconds"
        " FROM artifacts GROUP BY kind ORDER BY kind"
    )
    return statement, []


_CANNED = {
    "artifacts": _canned_artifacts,
    "cells": _canned_cells,
    "corpora": _canned_corpora,
    "kinds": _canned_kinds,
}

#: Canned query names (the CLI/serve layers validate against this).
CANNED_QUERIES = tuple(sorted(_CANNED))
