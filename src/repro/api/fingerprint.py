"""Content fingerprints for Workspace artifact keys.

An artifact key is a BLAKE2b digest over (a) the bytes of the corpus
the workspace is bound to and (b) exactly the configuration fields
that can change the artifact's value — nothing else.  Two
consequences the cache tests pin:

* changing any result-affecting knob (a distance weight, the
  suppression constant, ``use_weights``, a grid value) changes the key,
  so a stale artifact can never be served;
* knobs that are *proven* result-neutral (the phase-1 engine choice,
  the ε-query engine choice — both produce bitwise-identical output by
  the property suites) are deliberately **excluded**, so switching them
  keeps the cache warm.

Digests are hex strings; arrays contribute dtype, shape, and raw bytes
(so ``float64`` values with different spellings but equal bits share a
key, and equal values with different dtypes do not collide).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory

#: Digest size (bytes) — 16 gives 128-bit keys, far beyond collision
#: risk for a cache directory while keeping filenames short.
_DIGEST_SIZE = 16


def _update_array(digest, array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())


def _update_scalar(digest, value) -> None:
    if isinstance(value, float):
        # Hash the exact bits: 30.0 and 30.0000000000000004 must differ.
        digest.update(np.float64(value).tobytes())
    else:
        digest.update(repr(value).encode())


def corpus_fingerprint(trajectories: Sequence[Trajectory]) -> str:
    """Fingerprint of a trajectory corpus: ids, weights, timestamps,
    and every point's exact bytes, in corpus order."""
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(b"corpus/trajectories")
    for trajectory in trajectories:
        _update_scalar(digest, trajectory.traj_id)
        _update_scalar(digest, trajectory.weight)
        if trajectory.times is not None:
            _update_array(digest, trajectory.times)
        else:
            digest.update(b"untimed")
        _update_array(digest, trajectory.points)
    return digest.hexdigest()


def segments_fingerprint(segments: SegmentSet) -> str:
    """Fingerprint of an already-partitioned segment set (the
    segment-bound workspace flavor used by the figure benchmarks)."""
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(b"corpus/segments")
    _update_array(digest, segments.starts)
    _update_array(digest, segments.ends)
    _update_array(digest, segments.traj_ids)
    _update_array(digest, segments.weights)
    return digest.hexdigest()


def artifact_key(parts: Iterable) -> str:
    """Combine heterogeneous key parts (strings, numbers, arrays,
    ``None``) into one hex key."""
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        # One tag byte per value class so e.g. None, the string
        # "none", and a scalar can never collide.
        if part is None:
            digest.update(b"|N")
        elif isinstance(part, np.ndarray):
            digest.update(b"|A")
            _update_array(digest, part)
        elif isinstance(part, str):
            digest.update(b"|S")
            digest.update(part.encode())
        else:
            digest.update(b"|V")
            _update_scalar(digest, part)
    return digest.hexdigest()
