"""Artifact-graph analysis API (the Workspace facade).

Compute each TRACLUS stage once, let every consumer read from the
cache: see :mod:`repro.api.workspace` for the artifact table and
:mod:`repro.api.fingerprint` for the keying rules.
"""

from repro.api.cache import ARTIFACT_KINDS, ArtifactStore, CacheStats
from repro.api.catalog import CANNED_QUERIES, Catalog
from repro.api.fingerprint import (
    artifact_key,
    corpus_fingerprint,
    segments_fingerprint,
)
from repro.api.workspace import PartitionArtifact, Workspace

__all__ = [
    "Workspace",
    "PartitionArtifact",
    "ArtifactStore",
    "CacheStats",
    "Catalog",
    "CANNED_QUERIES",
    "ARTIFACT_KINDS",
    "artifact_key",
    "corpus_fingerprint",
    "segments_fingerprint",
]
