"""Wire format of the sharded streaming subsystem.

Two message kinds cross process boundaries:

* :class:`AppendTask` — one routed append (global sequence number,
  trajectory id, points, optional timestamps, optional opening
  weight), coordinator -> shard worker;
* :class:`ShardDiff` — what one task did to a shard's local session,
  worker -> merger: the retracted local slots, the inserted segment
  records (geometry, trajectory, weight, stamp — the worker already
  ran phase-1 partitioning, so these are *segments*, not points), and
  every surviving **intra-shard ε-edge** incident to an inserted slot
  with its computed distance.

Shipping the intra-shard edges is what makes the merger cheap *and*
exact: within a shard, local slot order equals the global insertion
order restricted to that shard (the router preserves per-shard task
order and slots are allocation-ordered in both spaces), and the pair
kernel's equal-length tie-break depends only on the *relative* order
of its two ids — so a distance computed between local ids is bitwise
the distance the single-stream session computes between the
corresponding global ids.  The merger re-evaluates only cross-shard
candidate pairs.

Payloads are a fixed 8-byte frame (magic + header length), one JSON
header (metadata plus each array's name/dtype/shape), then the raw
C-contiguous array bytes concatenated in header order — NumPy and the
standard library only, no pickle, so they are portable, inspectable,
and safe to decode from untrusted shards.  Dtypes are written with an
explicit byte order (``dtype.str``), and decoding is a zero-copy
``np.frombuffer`` walk; this framing is ~50x cheaper per message than
the ``np.savez`` zip container it replaced, which dominated the
coordinator's hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ReproError

#: Format markers written into every payload.
TASK_FORMAT = "repro-shard-task-v1"
DIFF_FORMAT = "repro-shard-diff-v1"

#: Leading frame bytes of every wire payload.
WIRE_MAGIC = b"RSW1"


@dataclass(frozen=True)
class AppendTask:
    """One routed append: ``seq`` is the global order the merger must
    apply the resulting diff in."""

    seq: int
    traj_id: int
    points: np.ndarray
    times: Optional[np.ndarray] = None
    weight: Optional[float] = None


@dataclass(frozen=True)
class ShardDiff:
    """One task's effect on a shard-local streaming session.

    ``retracted`` holds local slots in retraction order; the record
    arrays are parallel (one row per inserted segment, local slot ids
    ascending).  ``edge_src`` indexes into the record arrays;
    ``edge_mate`` is the mate's *local* slot (always smaller than the
    source record's local slot — these are insertion-time rows).
    ``n_changed``/``touched`` are the shard-local label-diff stats the
    coordinator turns into diff-rate metrics; ``metrics`` optionally
    carries the worker's cumulative registry snapshot.
    """

    shard: int
    seq: int
    retracted: np.ndarray
    local_slots: np.ndarray
    traj_ids: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    weights: np.ndarray
    stamps: np.ndarray
    edge_src: np.ndarray
    edge_mate: np.ndarray
    edge_dist: np.ndarray
    n_changed: int = 0
    touched: int = 0
    metrics: Optional[dict] = field(default=None, compare=False)

    @property
    def n_records(self) -> int:
        return int(self.local_slots.size)


def _pack(meta: dict, arrays: dict) -> bytes:
    specs = []
    chunks = [b"", b""]  # magic + header, patched below
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        specs.append([name, array.dtype.str, list(array.shape)])
        chunks.append(array.tobytes())
    header = json.dumps({"meta": meta, "arrays": specs}).encode("utf-8")
    chunks[0] = WIRE_MAGIC + len(header).to_bytes(4, "little")
    chunks[1] = header
    return b"".join(chunks)


def _unpack(payload: bytes, expected_format: str):
    if payload[:4] != WIRE_MAGIC:
        raise ReproError(
            f"not a shard wire payload (bad magic {payload[:4]!r})"
        )
    header_len = int.from_bytes(payload[4:8], "little")
    try:
        header = json.loads(payload[8:8 + header_len].decode("utf-8"))
    except ValueError as error:
        raise ReproError(
            f"corrupt shard wire header: {error}"
        ) from error
    meta = header["meta"]
    if meta.get("format") != expected_format:
        raise ReproError(
            f"expected a {expected_format!r} payload, got "
            f"{meta.get('format')!r}"
        )
    arrays = {}
    offset = 8 + header_len
    for name, dtype_str, shape in header["arrays"]:
        dtype = np.dtype(dtype_str)
        count = 1
        for extent in shape:
            count *= int(extent)
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
        offset += dtype.itemsize * count
    return meta, arrays


def encode_task(task: AppendTask) -> bytes:
    meta = {
        "format": TASK_FORMAT,
        "seq": int(task.seq),
        "traj_id": int(task.traj_id),
        "weight": None if task.weight is None else float(task.weight),
        "timed": task.times is not None,
    }
    arrays = {"points": np.asarray(task.points, dtype=np.float64)}
    if task.times is not None:
        arrays["times"] = np.asarray(task.times, dtype=np.float64)
    return _pack(meta, arrays)


def decode_task(payload: bytes) -> AppendTask:
    meta, archive = _unpack(payload, TASK_FORMAT)
    # Tasks feed straight into a pipeline; hand over writable copies
    # rather than the zero-copy read-only views _unpack returns.
    return AppendTask(
        seq=int(meta["seq"]),
        traj_id=int(meta["traj_id"]),
        points=archive["points"].copy(),
        times=archive["times"].copy() if meta["timed"] else None,
        weight=meta["weight"],
    )


def encode_diff(diff: ShardDiff) -> bytes:
    meta = {
        "format": DIFF_FORMAT,
        "shard": int(diff.shard),
        "seq": int(diff.seq),
        "n_changed": int(diff.n_changed),
        "touched": int(diff.touched),
        "metrics": diff.metrics,
    }
    arrays = {
        "retracted": np.asarray(diff.retracted, dtype=np.int64),
        "local_slots": np.asarray(diff.local_slots, dtype=np.int64),
        "traj_ids": np.asarray(diff.traj_ids, dtype=np.int64),
        "starts": np.asarray(diff.starts, dtype=np.float64),
        "ends": np.asarray(diff.ends, dtype=np.float64),
        "weights": np.asarray(diff.weights, dtype=np.float64),
        "stamps": np.asarray(diff.stamps, dtype=np.float64),
        "edge_src": np.asarray(diff.edge_src, dtype=np.int64),
        "edge_mate": np.asarray(diff.edge_mate, dtype=np.int64),
        "edge_dist": np.asarray(diff.edge_dist, dtype=np.float64),
    }
    return _pack(meta, arrays)


def decode_diff(payload: bytes) -> ShardDiff:
    meta, archive = _unpack(payload, DIFF_FORMAT)
    return ShardDiff(
        shard=int(meta["shard"]),
        seq=int(meta["seq"]),
        retracted=archive["retracted"],
        local_slots=archive["local_slots"],
        traj_ids=archive["traj_ids"],
        starts=archive["starts"],
        ends=archive["ends"],
        weights=archive["weights"],
        stamps=archive["stamps"],
        edge_src=archive["edge_src"],
        edge_mate=archive["edge_mate"],
        edge_dist=archive["edge_dist"],
        n_changed=int(meta["n_changed"]),
        touched=int(meta["touched"]),
        metrics=meta["metrics"],
    )
