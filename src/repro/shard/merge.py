"""Folding shard diffs into one globally consistent label view.

:class:`MergedNeighborGraph` is a
:class:`~repro.stream.dynamic_graph.DynamicNeighborGraph` whose
same-shard edges arrive over the wire: every slot carries its shard of
origin, candidate queries are filtered to **cross-shard** mates only,
and the shipped intra-shard edges are spliced in verbatim.  The union
is exactly the ε-graph a single-stream session builds, bitwise:

* *slot ids* — the merger allocates global slots by walking diffs in
  sequence order, which is the order a single-stream session would
  have ingested the same appends, so every segment gets the same id;
* *same-shard distances* — within a shard, local slot order equals
  global slot order restricted to that shard, and the pair kernel's
  equal-length tie-break depends only on relative id order, so worker
  distances are bit-identical to what the merger would recompute;
* *cross-shard distances* — evaluated here, by the same kernel over
  the same grid candidate superset the single-stream graph queries,
  minus the same-shard pairs already covered.

:class:`ShardMerger` drives an
:class:`~repro.stream.online_dbscan.OnlineDBSCAN` over that graph.
Diffs are buffered until contiguous in sequence, then applied as one
batch: all inserts first (one grid join + one kernel call for the
cross-shard pairs), then the retractions.  Deferring a retraction past
later inserts is safe because labels are a pure function of the final
ε-graph and alive set — an edge to a doomed slot is added and then
removed with no trace — while batching keeps the merger's per-segment
cost flat.  One :class:`~repro.stream.view.LabelDiff` is flushed per
drain; the merger's own :class:`~repro.stream.view.LabelView` folds
them into the consistent merged assignment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import StreamConfig
from repro.exceptions import ClusteringError
from repro.obs import NULL_REGISTRY
from repro.stream.dynamic_graph import DynamicNeighborGraph
from repro.stream.online_dbscan import OnlineDBSCAN
from repro.stream.view import LabelDiff, LabelView
from repro.shard.wire import ShardDiff


def validate_sharded_config(config: StreamConfig) -> None:
    """Sharded sessions disallow the sliding windows and compaction:
    count/horizon eviction is a *global* property no shard can decide
    locally, and compaction renames the slot ids the wire protocol
    keys on."""
    for name in ("max_segments", "horizon", "compact_dead_fraction"):
        if getattr(config, name) is not None:
            raise ClusteringError(
                f"sharded streaming does not support {name}; windows "
                f"and compaction need a global view no shard has "
                f"(run a single-stream session for windowed feeds)"
            )


class MergedNeighborGraph(DynamicNeighborGraph):
    """ε-graph whose same-shard edges are spliced in from the wire."""

    def __init__(
        self,
        eps: float,
        distance=None,
        dim: int = 2,
        cell_size: Optional[float] = None,
    ):
        super().__init__(eps, distance, dim=dim, cell_size=cell_size)
        self._shard_of = np.full(64, -1, dtype=np.int64)

    def shard_of_slot(self, slot: int) -> int:
        return int(self._shard_of[slot])

    def _note_shard(self, slot: int, shard: int) -> None:
        if slot >= self._shard_of.size:
            grown = np.full(
                max(self._shard_of.size * 2, slot + 1), -1, dtype=np.int64
            )
            grown[: self._shard_of.size] = self._shard_of
            self._shard_of = grown
        self._shard_of[slot] = shard

    def insert_merged_batch(
        self,
        shards: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        traj_ids: np.ndarray,
        weights: np.ndarray,
        stamps: np.ndarray,
        shipped: Sequence[Sequence[Tuple[int, float]]],
    ) -> List[Tuple[int, np.ndarray]]:
        """Insert many segments, computing only cross-shard candidates;
        *shipped* carries each record's intra-shard edges as
        ``(global mate, distance)`` with every mate already allocated.
        Returns ``(slot, insertion_time_neighbors)`` per record in
        order, neighbors ascending — the same rows
        :meth:`DynamicNeighborGraph.insert_batch` would have produced
        had it recomputed everything."""
        n = int(starts.shape[0])
        slots: List[int] = []
        for i in range(n):
            slot = self.store.append(
                starts[i], ends[i], int(traj_ids[i]),
                float(weights[i]), float(stamps[i]),
            )
            self._note_shard(slot, int(shards[i]))
            slots.append(slot)
        if not slots:
            return []
        slot_arr = np.asarray(slots, dtype=np.int64)
        shard_arr = np.asarray(shards, dtype=np.int64)
        if self._grid is not None:
            for slot in slots:
                self._grid.insert(slot)
            query_pos, candidates = self._grid.candidates_near_many(
                slot_arr, self._radius
            )
            query_slots = slot_arr[query_pos]
            keep = (
                self.store.alive_mask[candidates]
                & (candidates < query_slots)
                & (self._shard_of[candidates] != shard_arr[query_pos])
            )
            query_slots = query_slots[keep]
            candidates = candidates[keep]
        else:
            alive = self.store.alive_slots()
            query_chunks: List[np.ndarray] = []
            candidate_chunks: List[np.ndarray] = []
            for i, slot in enumerate(slots):
                mates = alive[alive < slot]
                mates = mates[self._shard_of[mates] != int(shard_arr[i])]
                query_chunks.append(
                    np.full(mates.size, slot, dtype=np.int64)
                )
                candidate_chunks.append(mates)
            query_slots = np.concatenate(query_chunks)
            candidates = np.concatenate(candidate_chunks)
        for slot in slots:
            self._adjacency[slot] = {}
        mates_of: Dict[int, List[int]] = {slot: [] for slot in slots}
        for i, slot in enumerate(slots):
            row = self._adjacency[slot]
            for mate, dist in shipped[i]:
                mate = int(mate)
                dist = float(dist)
                row[mate] = dist
                self._adjacency[mate][slot] = dist
                mates_of[slot].append(mate)
        if query_slots.size:
            dists = self.distance.pairs(self.store, query_slots, candidates)
            mask = dists <= self.eps
            for slot, mate, dist in zip(
                query_slots[mask].tolist(),
                candidates[mask].tolist(),
                dists[mask].tolist(),
            ):
                self._adjacency[slot][mate] = dist
                self._adjacency[mate][slot] = dist
                mates_of[slot].append(mate)
        return [
            (slot, np.sort(np.asarray(mates_of[slot], dtype=np.int64)))
            for slot in slots
        ]


class ShardMerger:
    """Applies :class:`~repro.shard.wire.ShardDiff` streams in global
    sequence order onto one merged clustering."""

    def __init__(
        self, config: StreamConfig, n_shards: int, metrics=None
    ):
        validate_sharded_config(config)
        self.config = config
        self.n_shards = int(n_shards)
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_diffs = self._metrics.counter(
            "repro_shard_diffs_applied_total",
            help="Shard diffs folded into the merged label view.",
        )
        self._m_records = self._metrics.counter(
            "repro_shard_records_merged_total",
            help="Segment records inserted into the merged store.",
        )
        self._m_shipped_edges = self._metrics.counter(
            "repro_shard_edges_shipped_total",
            help="Intra-shard eps-edges accepted verbatim from workers.",
        )
        self._m_cross_edges = self._metrics.counter(
            "repro_shard_edges_cross_total",
            help="Cross-shard eps-edges evaluated by the merger.",
        )
        self.graph = MergedNeighborGraph(
            config.eps, config.distance(), dim=config.dim
        )
        self.clusterer = OnlineDBSCAN(
            eps=config.eps,
            min_lns=config.min_lns,
            distance=config.distance(),
            cardinality_threshold=config.cardinality_threshold,
            use_weights=config.use_weights,
            dim=config.dim,
            graph=self.graph,
        )
        #: Fold of every merged diff — the consistent global view.
        self.view = LabelView()
        self._local_to_global: List[Dict[int, int]] = [
            {} for _ in range(self.n_shards)
        ]
        self.applied_seq = -1
        self._pending: Dict[int, ShardDiff] = {}
        #: Latest cumulative metrics snapshot shipped by each worker.
        self.worker_metrics: Dict[int, dict] = {}

    @property
    def lag(self) -> int:
        """Diffs received but not yet applicable (sequence holes)."""
        return len(self._pending)

    def offer(self, diff: ShardDiff) -> None:
        """Buffer one diff; apply with :meth:`drain` once contiguous."""
        if diff.seq <= self.applied_seq:
            raise ClusteringError(
                f"diff seq {diff.seq} already applied "
                f"(applied_seq={self.applied_seq})"
            )
        if diff.metrics is not None:
            self.worker_metrics[diff.shard] = diff.metrics
        self._pending[diff.seq] = diff

    def drain(self, max_diffs: Optional[int] = None) -> Optional[LabelDiff]:
        """Apply the longest contiguous run of buffered diffs — at most
        *max_diffs* of them when given; returns the merged label diff
        (``None`` when nothing was applicable).  Capping the run keeps
        the working set of deferred retractions small: a backlog folds
        as several medium batches instead of one huge one whose
        transient slots would bloat every repair."""
        run: List[ShardDiff] = []
        while self.applied_seq + 1 + len(run) in self._pending:
            if max_diffs is not None and len(run) >= max_diffs:
                break
            run.append(self._pending.pop(self.applied_seq + 1 + len(run)))
        if not run:
            return None
        return self._apply_run(run)

    def _apply_run(self, diffs: List[ShardDiff]) -> LabelDiff:
        base = len(self.graph.store)
        next_global = base
        shards: List[int] = []
        starts: List[np.ndarray] = []
        ends: List[np.ndarray] = []
        traj_ids: List[int] = []
        weights: List[float] = []
        stamps: List[float] = []
        shipped: List[List[Tuple[int, float]]] = []
        evictions: List[int] = []
        n_shipped_edges = 0
        for diff in diffs:
            local_to_global = self._local_to_global[diff.shard]
            for local in diff.retracted.tolist():
                evictions.append(local_to_global[local])
            offset = len(shipped)
            for i in range(diff.n_records):
                local_to_global[int(diff.local_slots[i])] = next_global
                next_global += 1
                shards.append(diff.shard)
                starts.append(diff.starts[i])
                ends.append(diff.ends[i])
                traj_ids.append(int(diff.traj_ids[i]))
                weights.append(float(diff.weights[i]))
                stamps.append(float(diff.stamps[i]))
                shipped.append([])
            for pos, mate, dist in zip(
                diff.edge_src.tolist(),
                diff.edge_mate.tolist(),
                diff.edge_dist.tolist(),
            ):
                shipped[offset + pos].append(
                    (local_to_global[mate], float(dist))
                )
                n_shipped_edges += 1
            self.applied_seq = diff.seq
        if shards:
            inserted = self.graph.insert_merged_batch(
                np.asarray(shards, dtype=np.int64),
                np.asarray(starts, dtype=np.float64),
                np.asarray(ends, dtype=np.float64),
                np.asarray(traj_ids, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
                np.asarray(stamps, dtype=np.float64),
                shipped,
            )
            if inserted[0][0] != base:
                raise ClusteringError(
                    "merged store allocation diverged from the sequence "
                    "walk; was the graph mutated outside the merger?"
                )
            self.clusterer.register_inserted(inserted)
            n_edges = sum(mates.size for _, mates in inserted)
            if self._metrics.enabled:
                self._m_records.inc(float(len(shards)))
                self._m_shipped_edges.inc(float(n_shipped_edges))
                self._m_cross_edges.inc(float(n_edges - n_shipped_edges))
        for slot in evictions:
            self.clusterer.evict(slot)
        if self._metrics.enabled:
            self._m_diffs.inc(float(len(diffs)))
        merged = self.clusterer.flush_diff()
        self.view.apply(merged)
        return merged

    # -- checkpointing -----------------------------------------------------
    def save_to(self, path: str) -> None:
        """Write the merged state (store, edges, shard origins, stable
        tokens, local -> global slot maps) to one ``.npz`` file."""
        import json

        store = self.graph.store
        edges_u, edges_v, edges_d = self.graph.edge_arrays()
        token_pairs, next_token = self.clusterer.export_tokens()
        arrays = {
            "store_starts": store.starts.copy(),
            "store_ends": store.ends.copy(),
            "store_traj_ids": store.traj_ids.copy(),
            "store_weights": store.weights.copy(),
            "store_stamps": store.stamps.copy(),
            "store_alive": store.alive_mask.copy(),
            "edges_u": edges_u,
            "edges_v": edges_v,
            "edges_d": edges_d,
            "shard_of": self.graph._shard_of[: len(store)].copy(),
            "comp_tokens": token_pairs,
        }
        for shard, mapping in enumerate(self._local_to_global):
            arrays[f"l2g_{shard}"] = np.array(
                sorted(mapping.items()), dtype=np.int64
            ).reshape(-1, 2)
        meta = {
            "format": "repro-shard-merger-v1",
            "applied_seq": self.applied_seq,
            "next_token": int(next_token),
        }
        arrays["meta"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **arrays)

    def restore_from(self, path: str) -> None:
        """Refill an *empty* merger from :meth:`save_to` output; labels,
        stable tokens, and future diffs continue identically."""
        import json

        from repro.exceptions import ReproError

        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("format") != "repro-shard-merger-v1":
                raise ReproError(
                    f"not a shard merger checkpoint "
                    f"(format={meta.get('format')!r})"
                )
            self.graph.restore_slots(
                archive["store_starts"],
                archive["store_ends"],
                archive["store_traj_ids"],
                archive["store_weights"],
                archive["store_stamps"],
                archive["store_alive"],
                archive["edges_u"],
                archive["edges_v"],
                archive["edges_d"],
            )
            shard_of = archive["shard_of"]
            for slot in range(shard_of.size):
                self.graph._note_shard(slot, int(shard_of[slot]))
            self.clusterer.rebuild_from_graph()
            self.clusterer.adopt_tokens(
                archive["comp_tokens"], int(meta["next_token"])
            )
            for shard in range(self.n_shards):
                self._local_to_global[shard] = {
                    int(local): int(global_slot)
                    for local, global_slot in archive[f"l2g_{shard}"]
                }
        self.view = self.clusterer.snapshot_view()
        self.applied_seq = int(meta["applied_seq"])

    # -- queries -----------------------------------------------------------
    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(slots, labels)`` of the merged clustering — bitwise what a
        single-stream session fed the same appends answers."""
        return self.clusterer.labels()

    @property
    def n_alive(self) -> int:
        return self.graph.store.n_alive

    def __repr__(self) -> str:
        return (
            f"ShardMerger(n_shards={self.n_shards}, "
            f"applied_seq={self.applied_seq}, n_alive={self.n_alive}, "
            f"pending={len(self._pending)})"
        )
