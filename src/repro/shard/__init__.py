"""Sharded streaming TRACLUS: parallel shard ingest, incremental label
deltas, and a consistent merged label view.

The single-stream pipeline (:mod:`repro.stream`) is serial by
construction.  This subsystem scales it out without giving up the
repo's central guarantee — labels bitwise identical to a batch refit:

* :mod:`repro.shard.router` pins each trajectory to one of K shards
  (``traj_id mod K``) and stamps appends with a global sequence;
* :mod:`repro.shard.worker` runs a full streaming session per shard
  (phase-1 MDL partitioning and all intra-shard ε-edges happen here,
  in parallel across shards) and emits
  :class:`~repro.shard.wire.ShardDiff` messages;
* :mod:`repro.shard.wire` is the numpy-only codec those messages (and
  the routed tasks) cross process boundaries in;
* :mod:`repro.shard.merge` folds the diffs in sequence order into one
  merged ε-graph — shipped intra-shard edges spliced verbatim, only
  the cross-shard boundary pairs re-evaluated by the shared distance
  kernel — and maintains the merged labels incrementally;
* :mod:`repro.shard.coordinator` glues it together as
  :class:`ShardedStream`, with in-process and one-process-per-shard
  modes, lag/diff-rate metrics, and a directory checkpoint that
  resumes mid-stream in either mode.

See the "Sharded streaming" section of the README for the equivalence
argument and the operational surface.
"""

from repro.shard.coordinator import SHARD_CHECKPOINT_FORMAT, ShardedStream
from repro.shard.merge import (
    MergedNeighborGraph,
    ShardMerger,
    validate_sharded_config,
)
from repro.shard.router import ShardRouter, shard_of
from repro.shard.wire import (
    AppendTask,
    ShardDiff,
    decode_diff,
    decode_task,
    encode_diff,
    encode_task,
)
from repro.shard.worker import ShardWorker, shard_worker_main

__all__ = [
    "AppendTask",
    "MergedNeighborGraph",
    "SHARD_CHECKPOINT_FORMAT",
    "ShardDiff",
    "ShardMerger",
    "ShardRouter",
    "ShardWorker",
    "ShardedStream",
    "decode_diff",
    "decode_task",
    "encode_diff",
    "encode_task",
    "shard_of",
    "shard_worker_main",
    "validate_sharded_config",
]
