"""One shard worker: a full streaming session over a slice of the feed.

A :class:`ShardWorker` owns a private
:class:`~repro.stream.pipeline.StreamingTRACLUS` — its own slot space,
ε-graph, and label state — and turns every routed
:class:`~repro.shard.wire.AppendTask` into a
:class:`~repro.shard.wire.ShardDiff`: the phase-1 segments the append
produced, the local slots it retracted, and the surviving intra-shard
ε-edges of each inserted slot *at insertion time* (mates with a
smaller local slot), distances included, so the merger never
re-evaluates a same-shard pair.

:func:`shard_worker_main` is the process entry point: a loop over a
duplex pipe carrying raw tagged byte frames (append / checkpoint /
telemetry / stop in, diffs and acks out — no pickling on the hot
path).  It is a module-level function so the multiprocessing spawn
method can import it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import StreamConfig
from repro.obs import MetricsRegistry
from repro.stream.pipeline import StreamingTRACLUS
from repro.shard.wire import (
    AppendTask,
    ShardDiff,
    decode_task,
    encode_diff,
)


class ShardWorker:
    """Wraps one shard's streaming session; usable in-process or as the
    engine of a worker process."""

    def __init__(
        self,
        shard: int,
        config: StreamConfig,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_every: int = 0,
        pipeline: Optional[StreamingTRACLUS] = None,
    ):
        self.shard = int(shard)
        self.metrics = metrics
        self.telemetry_every = int(telemetry_every)
        self.pipeline = (
            pipeline
            if pipeline is not None
            else StreamingTRACLUS(config, metrics=metrics)
        )
        self._n_diffs = 0

    def process(self, task: AppendTask) -> ShardDiff:
        """Apply one append to the local session and describe it."""
        update = self.pipeline.append(
            task.traj_id, task.points, times=task.times, weight=task.weight
        )
        clusterer = self.pipeline.clusterer
        store = clusterer.store
        graph = clusterer.graph
        inserted = np.asarray(update.inserted, dtype=np.int64)
        edge_src: list = []
        edge_mate: list = []
        edge_dist: list = []
        for pos, slot in enumerate(update.inserted):
            for mate, dist in sorted(graph.neighbor_distances(slot).items()):
                if mate < slot:
                    edge_src.append(pos)
                    edge_mate.append(mate)
                    edge_dist.append(dist)
        self._n_diffs += 1
        snapshot = None
        if (
            self.metrics is not None
            and self.telemetry_every > 0
            and self._n_diffs % self.telemetry_every == 0
        ):
            snapshot = self.metrics.snapshot()
        return ShardDiff(
            shard=self.shard,
            seq=task.seq,
            retracted=np.asarray(update.evicted, dtype=np.int64),
            local_slots=inserted,
            traj_ids=store.traj_ids[inserted].copy(),
            starts=store.starts[inserted].copy(),
            ends=store.ends[inserted].copy(),
            weights=store.weights[inserted].copy(),
            stamps=store.stamps[inserted].copy(),
            edge_src=np.asarray(edge_src, dtype=np.int64),
            edge_mate=np.asarray(edge_mate, dtype=np.int64),
            edge_dist=np.asarray(edge_dist, dtype=np.float64),
            n_changed=len(update.changed),
            touched=update.diff.touched,
            metrics=snapshot,
        )

    def process_bytes(self, payload: bytes) -> bytes:
        """The wire-to-wire path worker processes run."""
        return encode_diff(self.process(decode_task(payload)))


#: One-byte frame tags of the worker control protocol (both ways raw
#: ``send_bytes`` frames -- no pickling on the hot path).
TAG_APPEND = b"A"
TAG_CHECKPOINT = b"C"
TAG_TELEMETRY = b"T"
TAG_STOP = b"S"
TAG_DIFF = b"D"
TAG_CHECKPOINTED = b"K"
TAG_SNAPSHOT = b"M"
TAG_STOPPED = b"Z"


def shard_worker_main(
    shard: int,
    config_dict: dict,
    conn,
    checkpoint_path: Optional[str] = None,
    telemetry_every: int = 64,
) -> None:
    """Worker process entry point.

    *conn* (a duplex :mod:`multiprocessing` connection) carries raw
    tagged byte frames both ways::

        A + task_bytes       -> D + diff_bytes
        C + utf-8 path       -> K + utf-8 path (after checkpointing)
        T                    -> M + JSON metrics snapshot
        S                    -> Z + JSON metrics snapshot; exit

    When *checkpoint_path* is given the session resumes from that
    stream checkpoint instead of starting empty.
    """
    import json

    config = StreamConfig(**config_dict)
    metrics = MetricsRegistry(enabled=True)
    if checkpoint_path is not None:
        from repro.stream.checkpoint import load_checkpoint

        worker = ShardWorker(
            shard, config, metrics=metrics,
            telemetry_every=telemetry_every,
            pipeline=load_checkpoint(checkpoint_path, metrics=metrics),
        )
    else:
        worker = ShardWorker(
            shard, config, metrics=metrics, telemetry_every=telemetry_every
        )
    while True:
        message = conn.recv_bytes()
        kind = message[:1]
        if kind == TAG_APPEND:
            conn.send_bytes(TAG_DIFF + worker.process_bytes(message[1:]))
        elif kind == TAG_CHECKPOINT:
            from repro.stream.checkpoint import save_checkpoint

            path = message[1:].decode("utf-8")
            save_checkpoint(worker.pipeline, path)
            conn.send_bytes(TAG_CHECKPOINTED + path.encode("utf-8"))
        elif kind == TAG_TELEMETRY:
            conn.send_bytes(
                TAG_SNAPSHOT
                + json.dumps(metrics.snapshot()).encode("utf-8")
            )
        elif kind == TAG_STOP:
            conn.send_bytes(
                TAG_STOPPED
                + json.dumps(metrics.snapshot()).encode("utf-8")
            )
            return
        else:
            raise RuntimeError(f"unknown worker frame tag {kind!r}")
