"""Routing the input firehose onto K shard workers.

The partitioner is a pure function: a trajectory always lands on the
shard ``traj_id mod K``.  Pinning a whole trajectory to one shard is
load-balancing *and* correctness — phase-1 MDL partitioning is a
per-trajectory scan with resumable state, so the scan must see every
append of its trajectory, in order, in one place.

Each routed append is stamped with a global **sequence number**.  The
merger applies shard diffs strictly in sequence order, which makes the
merged store's slot allocation — and with it every slot id, every
distance tie-break, and every label — identical to a single-stream
session fed the same appends (see :mod:`repro.shard.merge`).
"""

from __future__ import annotations

from repro.exceptions import ClusteringError
from repro.shard.wire import AppendTask


def shard_of(traj_id: int, n_shards: int) -> int:
    """The shard a trajectory is pinned to."""
    return int(traj_id) % int(n_shards)


class ShardRouter:
    """Stamps appends with sequence numbers and routes them to shards."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ClusteringError(
                f"n_shards must be positive, got {n_shards}"
            )
        self.n_shards = int(n_shards)
        self.next_seq = 0

    def route(self, traj_id, points, times=None, weight=None):
        """Returns ``(shard, AppendTask)`` for one append."""
        seq = self.next_seq
        self.next_seq += 1
        task = AppendTask(
            seq=seq, traj_id=int(traj_id), points=points,
            times=times, weight=weight,
        )
        return shard_of(traj_id, self.n_shards), task

    def __repr__(self) -> str:
        return (
            f"ShardRouter(n_shards={self.n_shards}, "
            f"next_seq={self.next_seq})"
        )
