"""The sharded streaming session: router + K workers + one merger.

:class:`ShardedStream` is the user-facing handle.  Appends are routed
by trajectory to one of K shard workers — each a full
:class:`~repro.stream.pipeline.StreamingTRACLUS` over its slice of the
feed — and the :class:`~repro.shard.merge.ShardMerger` folds the
resulting :class:`~repro.shard.wire.ShardDiff` stream, in global
sequence order, into one consistent label view whose dense labels are
bitwise identical to a single-stream session (and hence to a batch
refit) over the union of all shards.

Two execution modes share every code path above the transport:

* ``processes=False`` (default) runs the workers in-process.  Each
  append still round-trips through the wire codec (so the protocol is
  exercised everywhere, including the property tests) and returns the
  merged label diff synchronously.
* ``processes=True`` spawns one OS process per shard
  (:func:`~repro.shard.worker.shard_worker_main`).  Appends are
  dispatched as raw tagged frames over per-worker duplex pipes and
  return immediately; diff frames flow back on the same pipes and are
  folded opportunistically — call :meth:`sync` (or :meth:`drain` with
  ``block=True``) before reading labels.

Checkpointing writes one directory: a standard stream checkpoint per
shard, the merged graph + stable tokens + slot maps, and a JSON
manifest; :meth:`ShardedStream.restore` resumes in either mode and
continues label-identically.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import StreamConfig
from repro.exceptions import ClusteringError, ReproError
from repro.obs import NULL_REGISTRY, MetricsRegistry, aggregate_snapshots
from repro.shard.merge import ShardMerger, validate_sharded_config
from repro.shard.router import ShardRouter
from repro.shard.wire import decode_diff, encode_task
from repro.shard import worker as worker_module
from repro.shard.worker import ShardWorker, shard_worker_main
from repro.stream.view import LabelDiff, LabelView

#: Manifest format marker of a sharded checkpoint directory.
SHARD_CHECKPOINT_FORMAT = "repro-shard-checkpoint-v1"

#: Seconds to wait on worker replies before declaring a shard dead.
_WORKER_TIMEOUT = 60.0

#: Most shard diffs folded into the merged view per batched run.
_MERGE_RUN_CAP = 32


class ShardedStream:
    """Parallel shard ingest with a consistent merged label view."""

    def __init__(
        self,
        config: StreamConfig,
        n_shards: int,
        processes: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_every: int = 64,
        _restore_dir: Optional[str] = None,
        _restore_manifest: Optional[dict] = None,
    ):
        if n_shards < 1:
            raise ClusteringError(
                f"n_shards must be positive, got {n_shards}"
            )
        validate_sharded_config(config)
        self.config = config
        self.n_shards = int(n_shards)
        self.processes = bool(processes)
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_appends = self._metrics.counter(
            "repro_shard_appends_total",
            help="Appends routed into the sharded session.",
        )
        self._m_lag = self._metrics.gauge(
            "repro_shard_lag",
            help="Routed appends whose diff is not yet merged "
                 "(router seq minus merged seq).",
        )
        self.router = ShardRouter(self.n_shards)
        self.merger = ShardMerger(
            config, self.n_shards, metrics=self._metrics
        )
        self._closed = False
        self._workers: List[ShardWorker] = []
        self._procs: List = []
        self._conns: List = []
        self._merged_backlog: List[LabelDiff] = []
        shard_paths: List[Optional[str]] = [None] * self.n_shards
        if _restore_manifest is not None:
            self.router.next_seq = int(_restore_manifest["next_seq"])
            self.merger.restore_from(
                os.path.join(_restore_dir, "merger.npz")
            )
            shard_paths = [
                os.path.join(_restore_dir, f"shard-{k}.npz")
                for k in range(self.n_shards)
            ]
        if self.processes:
            import multiprocessing as mp

            for k in range(self.n_shards):
                parent_conn, child_conn = mp.Pipe()
                proc = mp.Process(
                    target=shard_worker_main,
                    args=(
                        k,
                        _config_dict(config),
                        child_conn,
                        shard_paths[k],
                        telemetry_every,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        else:
            for k in range(self.n_shards):
                pipeline = None
                if shard_paths[k] is not None:
                    from repro.stream.checkpoint import load_checkpoint

                    pipeline = load_checkpoint(
                        shard_paths[k], metrics=self._metrics
                    )
                self._workers.append(
                    ShardWorker(
                        k, config, metrics=self._metrics,
                        pipeline=pipeline,
                    )
                )

    # -- ingestion ---------------------------------------------------------
    def append(
        self, traj_id, points, times=None, weight=None
    ) -> Optional[LabelDiff]:
        """Route one append.  In-process mode applies it end to end and
        returns the merged label diff; process mode dispatches and
        returns ``None`` (diffs fold on :meth:`drain`/:meth:`sync`)."""
        self._check_open()
        shard, task = self.router.route(
            traj_id, points, times=times, weight=weight
        )
        if self._metrics.enabled:
            self._m_appends.inc()
        payload = encode_task(task)
        if not self.processes:
            diff_bytes = self._workers[shard].process_bytes(payload)
            self.merger.offer(decode_diff(diff_bytes))
            merged = self.merger.drain()
            self._update_lag()
            return merged
        self._dispatch(shard, worker_module.TAG_APPEND + payload)
        self._absorb_ready()
        self._merge_pending()
        self._update_lag()
        return None

    # -- merging -----------------------------------------------------------
    def _dispatch(self, shard: int, frame: bytes) -> None:
        """Send one task frame without ever stalling on a full pipe:
        while the worker's inbound buffer has no room, absorb and merge
        the diff frames the workers are blocked trying to hand back
        (that is what fills the buffers), then retry — backpressure
        becomes merge time instead of idle time."""
        import select

        conn = self._conns[shard]
        while not select.select([], [conn], [], 0)[1]:
            from multiprocessing.connection import (
                wait as connection_wait,
            )

            if not self._absorb_ready():
                if not connection_wait(
                    self._conns, timeout=_WORKER_TIMEOUT
                ):
                    self._check_workers_alive()
                    continue
                self._absorb_ready()
            self._merge_pending()
        conn.send_bytes(frame)

    def _absorb_ready(self) -> int:
        """Offer every diff frame currently readable to the merger
        (one ``select`` across all worker pipes per round); does not
        drain."""
        import select

        offered = 0
        while True:
            readable = select.select(self._conns, [], [], 0)[0]
            if not readable:
                return offered
            for conn in readable:
                try:
                    frame = conn.recv_bytes()
                except EOFError:
                    self._check_workers_alive()
                    raise
                if frame[:1] != worker_module.TAG_DIFF:
                    raise ReproError(
                        f"unexpected worker frame {frame[:1]!r} "
                        f"while pumping diffs"
                    )
                self.merger.offer(decode_diff(frame[1:]))
                offered += 1

    def _merge_pending(self) -> None:
        """Fold buffered contiguous diffs in capped runs, parking the
        merged label diffs on the backlog the next :meth:`drain` call
        hands out.  Medium runs amortize the grid join and kernel call
        without letting deferred retractions bloat the graph."""
        while True:
            diff = self.merger.drain(max_diffs=_MERGE_RUN_CAP)
            if diff is None:
                return
            self._merged_backlog.append(diff)

    def _pump(self, block: bool) -> List[LabelDiff]:
        """Move diff frames from the worker pipes into the merger;
        returns every merged label diff produced since the last call
        (including those folded opportunistically during appends)."""
        if not self.processes:
            return []
        from multiprocessing.connection import wait as connection_wait

        outstanding = self.router.next_seq - 1 - self.merger.applied_seq
        while outstanding > 0:
            offered = self._absorb_ready()
            if offered:
                self._merge_pending()
            elif block:
                if not connection_wait(
                    self._conns, timeout=_WORKER_TIMEOUT
                ):
                    self._check_workers_alive()
            else:
                break
            outstanding = self.router.next_seq - 1 - self.merger.applied_seq
        merged = self._merged_backlog
        self._merged_backlog = []
        return merged

    def drain(self, block: bool = False) -> List[LabelDiff]:
        """Fold queued shard diffs into the merged view; with *block*
        waits until every routed append has been merged."""
        self._check_open()
        merged = self._pump(block=block)
        self._update_lag()
        return merged

    def sync(self) -> None:
        """Block until the merged view covers every routed append."""
        self.drain(block=True)

    @property
    def lag(self) -> int:
        """Routed appends not yet reflected in the merged view."""
        return self.router.next_seq - 1 - self.merger.applied_seq

    def _update_lag(self) -> None:
        if self._metrics.enabled:
            self._m_lag.set(float(self.lag))

    # -- queries -----------------------------------------------------------
    @property
    def view(self) -> LabelView:
        """The merged label view (synced appends only)."""
        return self.merger.view

    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """Merged ``(slots, labels)`` — bitwise identical to a
        single-stream session (and a batch refit) over the union."""
        return self.merger.labels()

    @property
    def n_alive(self) -> int:
        return self.merger.n_alive

    def metrics_snapshot(self) -> dict:
        """Fleet-wide metrics: the coordinator/merger registry plus the
        latest snapshot each worker process shipped."""
        own = self._metrics.snapshot()
        return aggregate_snapshots(
            [own] + list(self.merger.worker_metrics.values())
        )

    # -- checkpointing -----------------------------------------------------
    def checkpoint(self, directory: str) -> None:
        """Write the whole sharded session under *directory* (created
        if missing): ``shard-K.npz`` per worker, ``merger.npz``, and a
        ``manifest.json``.  Syncs first so no diff is in flight."""
        self._check_open()
        self.sync()
        os.makedirs(directory, exist_ok=True)
        for k in range(self.n_shards):
            path = os.path.join(directory, f"shard-{k}.npz")
            if self.processes:
                self._conns[k].send_bytes(
                    worker_module.TAG_CHECKPOINT + path.encode("utf-8")
                )
                kind, _ = self._recv(k)
                if kind != worker_module.TAG_CHECKPOINTED:
                    raise ReproError(
                        f"shard {k} failed to checkpoint (got {kind!r})"
                    )
            else:
                from repro.stream.checkpoint import save_checkpoint

                save_checkpoint(self._workers[k].pipeline, path)
        self.merger.save_to(os.path.join(directory, "merger.npz"))
        manifest = {
            "format": SHARD_CHECKPOINT_FORMAT,
            "n_shards": self.n_shards,
            "next_seq": self.router.next_seq,
            "applied_seq": self.merger.applied_seq,
            "config": _config_dict(self.config),
        }
        with open(
            os.path.join(directory, "manifest.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle, indent=2)

    @classmethod
    def restore(
        cls,
        directory: str,
        processes: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        telemetry_every: int = 64,
    ) -> "ShardedStream":
        """Resume a sharded session from :meth:`checkpoint` output; the
        resumed session continues label-identically in either mode."""
        with open(
            os.path.join(directory, "manifest.json"), encoding="utf-8"
        ) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != SHARD_CHECKPOINT_FORMAT:
            raise ReproError(
                f"not a sharded stream checkpoint "
                f"(format={manifest.get('format')!r})"
            )
        return cls(
            StreamConfig(**manifest["config"]),
            int(manifest["n_shards"]),
            processes=processes,
            metrics=metrics,
            telemetry_every=telemetry_every,
            _restore_dir=directory,
            _restore_manifest=manifest,
        )

    # -- lifecycle ---------------------------------------------------------
    def _recv(self, shard: int):
        """Wait for a control reply frame from *shard*, folding any
        diff frames that are still in flight into the merger."""
        conn = self._conns[shard]
        while True:
            if not conn.poll(_WORKER_TIMEOUT):
                raise ReproError(
                    f"shard {shard} worker is not responding"
                )
            frame = conn.recv_bytes()
            if frame[:1] == worker_module.TAG_DIFF:
                self.merger.offer(decode_diff(frame[1:]))
                continue
            return frame[:1], frame[1:]

    def _check_workers_alive(self) -> None:
        for k, proc in enumerate(self._procs):
            if not proc.is_alive():
                raise ReproError(
                    f"shard {k} worker died (exitcode={proc.exitcode})"
                )

    def _check_open(self) -> None:
        if self._closed:
            raise ClusteringError("sharded stream is closed")

    def close(self) -> None:
        """Drain outstanding work, stop the workers, join the
        processes.  Idempotent."""
        if self._closed:
            return
        if self.processes:
            try:
                self._pump(block=True)
            finally:
                for k, conn in enumerate(self._conns):
                    try:
                        conn.send_bytes(worker_module.TAG_STOP)
                        kind, body = self._recv(k)
                        if kind == worker_module.TAG_STOPPED and body:
                            self.merger.worker_metrics[k] = json.loads(
                                body.decode("utf-8")
                            )
                    except (OSError, EOFError, ReproError):
                        pass
                    conn.close()
                for proc in self._procs:
                    proc.join(timeout=_WORKER_TIMEOUT)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join()
        self._closed = True

    def __enter__(self) -> "ShardedStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedStream(n_shards={self.n_shards}, "
            f"processes={self.processes}, n_alive={self.n_alive}, "
            f"lag={self.lag})"
        )


def _config_dict(config: StreamConfig) -> dict:
    from dataclasses import asdict

    return asdict(config)
