"""Batched trajectory partitioning: lock-step Figure 8 over a corpus.

The per-trajectory scan (:mod:`repro.partition.approximate`) evaluates
one MDL comparison per loop iteration — a handful of tiny NumPy calls
per *point*, which makes phase 1 the interpreter-bound bottleneck of
``TRACLUS.fit`` on large corpora.  This module runs the **same scan on
every trajectory simultaneously**: the corpus becomes one ragged
``(offsets, flat points)`` container (:class:`~repro.model.ragged.RaggedPoints`)
and each *global* step advances all still-scanning trajectories by one
Figure-8 iteration, evaluating every active candidate window in a
single call to the shared multi-window cost kernel
(:func:`~repro.partition.mdl.window_mdl_costs`).

Exactness, not approximation
----------------------------
This is a *mechanical* re-scheduling of Figure 8, not a numerical
shortcut.  Trajectories are independent, so interleaving their loop
iterations cannot change any decision; and because both engines share
one kernel whose per-window arithmetic is elementwise-IEEE and whose
per-window sums are ``np.add.reduceat`` slices, every ``MDL_par`` /
``MDL_nopar`` value — including the Section 4.1.3 suppression constant
and the strict ``>`` tie behavior of line 07 — is bitwise identical to
the per-trajectory scan.  The characteristic points are therefore
*exactly* equal, which the property suite asserts point for point.

The scheduling also yields the resumable scan state ``(start_index,
length)`` per trajectory, so a streaming session can bulk-load a whole
corpus through this engine and then continue incrementally
(:meth:`TrajectoryStream.bulk_append
<repro.stream.ingest.TrajectoryStream.bulk_append>`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import PartitionError
from repro.model.ragged import RaggedPoints, concatenate_ranges
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.partition.layout import LockstepLayout
from repro.partition.mdl import window_mdl_costs


def _rebuild_step_costs(
    flat: np.ndarray,
    base: np.ndarray,
    active: np.ndarray,
    starts: np.ndarray,
    currs: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The historical per-step evaluation: rebuild the full ragged
    gather/window_of layout from scratch and call the generic kernel.
    Kept as the baseline the persistent layout is benchmarked (and
    bitwise-regression-tested) against."""
    counts = currs - starts
    offsets = np.cumsum(counts) - counts
    first = base[active] + starts
    gather = concatenate_ranges(first, counts)
    window_of = np.repeat(np.arange(active.size, dtype=np.int64), counts)
    return window_mdl_costs(
        flat[first],
        flat[base[active] + currs],
        flat[gather],
        flat[gather + 1],
        window_of,
        offsets,
    )


def lockstep_scan(
    ragged: RaggedPoints,
    suppression: float = 0.0,
    *,
    layout: Optional[LockstepLayout] = None,
    reuse_layout: bool = True,
) -> Tuple[List[List[int]], np.ndarray, np.ndarray]:
    """Run Figure 8 on every row of *ragged* in lock-step.

    Rows may have any length >= 1 (a single-point row simply never
    enters the scan loop — the streaming bulk-load path needs that).

    By default each step is evaluated through a persistent
    :class:`~repro.partition.layout.LockstepLayout` (precomputed
    per-segment invariants, incremental window bookkeeping) — pass an
    existing *layout* to share it across scans of the same corpus, or
    ``reuse_layout=False`` to force the historical rebuild-per-step
    path.  All paths are bitwise identical.

    Returns
    -------
    (committed, start_index, length)
        ``committed[t]`` are row *t*'s line-08 characteristic points
        including the leading 0 and *excluding* the forced final
        endpoint of line 12; ``(start_index[t], length[t])`` is the
        resumable scan position, exactly as
        :meth:`IncrementalPartitioner.scan_state
        <repro.partition.incremental.IncrementalPartitioner.scan_state>`
        would report after appending the same points.
    """
    if suppression < 0:
        raise PartitionError(
            f"suppression must be non-negative, got {suppression}"
        )
    n_rows = len(ragged)
    flat = ragged.flat
    base = ragged.offsets[:-1]
    n = ragged.lengths
    if layout is None and reuse_layout:
        layout = LockstepLayout(ragged)
    committed: List[List[int]] = [[0] for _ in range(n_rows)]  # line 01
    start = np.zeros(n_rows, dtype=np.int64)  # line 02
    length = np.ones(n_rows, dtype=np.int64)
    active = np.flatnonzero(start + length <= n - 1)  # line 03
    while active.size:
        starts = start[active]
        currs = starts + length[active]  # line 04
        if layout is not None:
            lh, ldh, nopar = layout.step_costs(active, start, length)
        else:
            lh, ldh, nopar = _rebuild_step_costs(
                flat, base, active, starts, currs
            )
        cost_par = lh + ldh  # line 05
        cost_nopar = nopar + suppression  # line 06
        commit = (cost_par > cost_nopar) & (currs - 1 > starts)  # line 07
        committing = active[commit]
        if committing.size:
            new_starts = currs[commit] - 1
            for row, cp in zip(committing.tolist(), new_starts.tolist()):
                committed[row].append(cp)  # line 08
            start[committing] = new_starts  # line 09
            length[committing] = 1
        length[active[~commit]] += 1  # line 11
        active = active[start[active] + length[active] <= n[active] - 1]
    return committed, start, length


def batched_partition_arrays(
    point_arrays: Sequence[Union[Sequence[Sequence[float]], np.ndarray]],
    suppression: float = 0.0,
) -> List[List[int]]:
    """Characteristic-point indices for many trajectories at once.

    The batched counterpart of calling
    :func:`~repro.partition.approximate.approximate_partition` on each
    ``(n >= 2, d)`` array — same validation, bitwise-identical output.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in point_arrays]
    for a in arrays:
        if a.ndim != 2 or a.shape[0] < 2:
            raise PartitionError(
                f"need an (n >= 2, d) point array, got shape {a.shape}"
            )
    if not arrays:
        return []
    ragged = RaggedPoints.from_arrays(arrays)
    committed, _, _ = lockstep_scan(ragged, suppression)
    lengths = ragged.lengths
    for row, cps in enumerate(committed):
        last = int(lengths[row]) - 1
        if cps[-1] != last:
            cps.append(last)  # line 12: the ending point
    return committed


def batched_partition_all(
    trajectories: Sequence[Trajectory], suppression: float = 0.0
) -> Tuple[SegmentSet, List[List[int]]]:
    """The whole partitioning phase (Figure 4, lines 01-03) through the
    lock-step engine: Figure 8 on every trajectory, all partitions
    accumulated into one :class:`SegmentSet` ``D``.

    Drop-in for :func:`~repro.partition.approximate.partition_all` with
    ``method="python"`` — identical segments, identical characteristic
    points, one interpreter loop per *global scan step* instead of per
    point.
    """
    all_cps = batched_partition_arrays(
        [trajectory.points for trajectory in trajectories],
        suppression=suppression,
    )
    segments = SegmentSet.from_partitions(trajectories, all_cps)
    return segments, all_cps
