"""Persistent active-window layout for the lock-step Figure-8 scan.

:func:`repro.partition.batched.lockstep_scan` historically rebuilt its
ragged window layout on **every global step**: re-deriving each
enclosed segment's vector, length, and encoded length from the flat
points, and re-materialising the full ``gather``/``window_of`` index
arrays with ``np.repeat``/``cumsum`` — ~40% of scan time spent
recreating state that barely changes between steps (each active window
either grows by one segment or resets to one).

:class:`LockstepLayout` keeps that state across steps, in the spirit of
the incremental-view-maintenance discipline the streaming layer already
follows (keep derived state, never rebuild):

* Per-original-segment invariants — ``seg_vecs``, ``seg_lens``,
  ``enc_lens`` (the ``clamped_log2`` encodings) — are computed **once**
  per corpus and gathered per step, instead of being recomputed from
  coordinates on every step.  Elementwise ufuncs on identical operands
  are bitwise-stable, so the gathered values are bit-for-bit the values
  the rebuild path recomputes.
* The per-step index arrays are built in one fused ``np.repeat`` over a
  packed ``(active, 2)`` int64 table (window ids and range bases
  together) plus a sliced persistent ``arange`` buffer — one ragged
  expansion per step instead of two.
* With a compiled kernel backend active (:mod:`repro.kernels`), the
  index arrays vanish entirely: windows are *contiguous* ranges
  ``first[w] .. first[w]+counts[w]-1`` of the flat points, so the
  backend's ``lockstep_geometry`` walks them in place and only the
  per-window ``first``/``counts`` vectors (O(active), not O(enclosed
  segments)) are constructed per step.

Bitwise contract: every path produces ``(lh, ldh, nopar)`` bit-for-bit
equal to :func:`repro.partition.mdl.window_mdl_costs` on the rebuilt
arrays — asserted by the layout regression suite and, for compiled
backends, by the registration parity gate
(:mod:`repro.kernels.selftest`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.model.ragged import RaggedPoints
from repro.partition.mdl import clamped_log2

_TINY = np.finfo(np.float64).tiny


class LockstepLayout:
    """Per-corpus persistent state for the lock-step scan.

    Build once per :class:`~repro.model.ragged.RaggedPoints` corpus and
    pass to :func:`~repro.partition.batched.lockstep_scan`; reuse across
    scans of the same corpus is safe (the layout is read-only after
    construction).
    """

    __slots__ = (
        "flat", "base", "lengths", "seg_vecs", "seg_lens", "enc_lens",
        "_arange",
    )

    def __init__(self, ragged: RaggedPoints):
        flat = ragged.flat
        self.flat = flat
        self.base = ragged.offsets[:-1]
        self.lengths = ragged.lengths
        # Per-segment invariants over the flat points.  Row boundaries
        # produce junk entries (flat[b]-flat[b-1] crosses rows) that no
        # window ever gathers: window w of row t only touches segment
        # indices base[t]+start .. base[t]+start+len-1 <= base[t+1]-2.
        if flat.shape[0] > 1:
            seg_vecs = flat[1:] - flat[:-1]
        else:
            seg_vecs = np.empty((0, flat.shape[1]), dtype=np.float64)
        self.seg_vecs = seg_vecs
        self.seg_lens = np.sqrt(np.sum(seg_vecs * seg_vecs, axis=1))
        self.enc_lens = clamped_log2(self.seg_lens)
        self._arange = np.arange(max(self.seg_lens.shape[0], 1),
                                 dtype=np.int64)

    def step_costs(
        self,
        active: np.ndarray,
        start: np.ndarray,
        length: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lh, ldh, nopar)`` of every active window at the current
        scan position — bitwise equal to the rebuild path's
        :func:`~repro.partition.mdl.window_mdl_costs` call."""
        starts = start[active]
        counts = length[active]
        first = self.base[active] + starts
        hyp_end_idx = first + counts
        offsets = np.cumsum(counts) - counts

        from repro import kernels

        backend = kernels.active_backend()
        if (
            backend is not None
            and self.flat.shape[1] <= kernels.MAX_COMPILED_DIM
        ):
            with kernels.maybe_time("lockstep_geometry", backend.name):
                hyp_len, perp_in, theta_in, enc_gath = (
                    backend.lockstep_geometry(
                        self.flat, self.seg_lens, self.enc_lens,
                        np.ascontiguousarray(first),
                        np.ascontiguousarray(counts),
                        np.ascontiguousarray(hyp_end_idx),
                    )
                )
            lh = clamped_log2(hyp_len)
            nopar = np.add.reduceat(enc_gath, offsets)
            ldh = np.add.reduceat(
                clamped_log2(perp_in), offsets
            ) + np.add.reduceat(clamped_log2(theta_in), offsets)
            ldh[counts == 1] = 0.0
            return lh, ldh, nopar
        return self._step_costs_numpy(first, counts, hyp_end_idx, offsets)

    def _step_costs_numpy(self, first, counts, hyp_end_idx, offsets):
        """The numpy path: one fused ragged expansion, gathered
        invariants, and the exact elementwise body of
        ``_window_mdl_costs_numpy``."""
        total = int(offsets[-1]) + int(counts[-1]) if counts.size else 0
        n_windows = first.shape[0]

        # Fused index-array construction: one np.repeat expands window
        # ids and range bases together; adding the persistent arange
        # turns bases into per-element flat segment indices.
        pack = np.empty((n_windows, 2), dtype=np.int64)
        pack[:, 0] = np.arange(n_windows, dtype=np.int64)
        pack[:, 1] = first - offsets
        rep = np.repeat(pack, counts, axis=0)
        window_of = rep[:, 0]
        gather = rep[:, 1] + self._arange[:total]

        if self.flat.shape[1] == 2:
            return self._step_costs_numpy_2d(
                first, counts, hyp_end_idx, offsets, window_of, gather
            )

        flat = self.flat
        hyp_starts = flat[first]
        hyp_vecs = flat[hyp_end_idx] - hyp_starts
        hyp_sq = np.sum(hyp_vecs * hyp_vecs, axis=1)
        lh = clamped_log2(np.sqrt(hyp_sq))

        degenerate = hyp_sq < _TINY
        inv_sq = 1.0 / np.where(degenerate, 1.0, hyp_sq)

        hv = hyp_vecs[window_of]
        hs = hyp_starts[window_of]
        inv = inv_sq[window_of]
        deg = degenerate[window_of]

        sub_starts = flat[gather]
        sub_ends = flat[gather + 1]
        # Gathered invariants replace the rebuild path's per-step
        # recompute (identical elementwise ops on identical operands).
        sub_vecs = self.seg_vecs[gather]
        sub_lens = self.seg_lens[gather]
        nopar = np.add.reduceat(self.enc_lens[gather], offsets)

        rel1 = sub_starts - hs
        rel2 = sub_ends - hs
        u1 = np.sum(rel1 * hv, axis=1) * inv
        u2 = np.sum(rel2 * hv, axis=1) * inv
        off1 = sub_starts - (hs + u1[:, None] * hv)
        off2 = sub_ends - (hs + u2[:, None] * hv)
        l_perp1 = np.sqrt(np.sum(off1 * off1, axis=1))
        l_perp2 = np.sqrt(np.sum(off2 * off2, axis=1))
        sums = l_perp1 + l_perp2
        d_perp = np.where(
            sums > 0.0,
            (l_perp1 * l_perp1 + l_perp2 * l_perp2)
            / np.where(sums > 0.0, sums, 1.0),
            0.0,
        )

        dots = np.sum(sub_vecs * hv, axis=1)
        rejection = sub_vecs - (dots * inv)[:, None] * hv
        sin_term = np.sqrt(np.sum(rejection * rejection, axis=1))
        d_theta = np.where(dots > 0.0, sin_term, sub_lens)
        d_theta = np.where(sub_lens > 0.0, d_theta, 0.0)

        point_dist = np.sqrt(np.sum(rel1 * rel1, axis=1))
        enc_perp = np.where(
            deg, clamped_log2(point_dist), clamped_log2(d_perp)
        )
        enc_theta = np.where(deg, 0.0, clamped_log2(d_theta))
        ldh = np.add.reduceat(enc_perp, offsets) + np.add.reduceat(
            enc_theta, offsets
        )
        ldh[counts == 1] = 0.0
        return lh, ldh, nopar

    def _step_costs_numpy_2d(
        self, first, counts, hyp_end_idx, offsets, window_of, gather
    ):
        """Planar specialisation of the numpy body: every
        ``np.sum(a * b, axis=1)`` dot over two columns is one add of two
        products — numpy's pairwise reduction degenerates to exactly
        ``a0*b0 + a1*b1`` for a length-2 axis, so column arithmetic on
        1-D views is bitwise identical while skipping the reduction
        dispatch and all (n, 2) temporaries (the dominant per-step cost
        at typical active-window sizes)."""
        flat = self.flat
        fx = flat[:, 0]
        fy = flat[:, 1]

        hsx = fx[first]
        hsy = fy[first]
        hvx = fx[hyp_end_idx] - hsx
        hvy = fy[hyp_end_idx] - hsy
        hyp_sq = hvx * hvx + hvy * hvy
        lh = clamped_log2(np.sqrt(hyp_sq))

        degenerate = hyp_sq < _TINY
        inv_sq = 1.0 / np.where(degenerate, 1.0, hyp_sq)

        hvx = hvx[window_of]
        hvy = hvy[window_of]
        hsx = hsx[window_of]
        hsy = hsy[window_of]
        inv = inv_sq[window_of]
        deg = degenerate[window_of]

        ssx = fx[gather]
        ssy = fy[gather]
        end_gather = gather + 1
        sex = fx[end_gather]
        sey = fy[end_gather]
        sub_vecs = self.seg_vecs[gather]
        svx = sub_vecs[:, 0]
        svy = sub_vecs[:, 1]
        sub_lens = self.seg_lens[gather]
        nopar = np.add.reduceat(self.enc_lens[gather], offsets)

        r1x = ssx - hsx
        r1y = ssy - hsy
        r2x = sex - hsx
        r2y = sey - hsy
        u1 = (r1x * hvx + r1y * hvy) * inv
        u2 = (r2x * hvx + r2y * hvy) * inv
        o1x = ssx - (hsx + u1 * hvx)
        o1y = ssy - (hsy + u1 * hvy)
        o2x = sex - (hsx + u2 * hvx)
        o2y = sey - (hsy + u2 * hvy)
        l_perp1 = np.sqrt(o1x * o1x + o1y * o1y)
        l_perp2 = np.sqrt(o2x * o2x + o2y * o2y)
        sums = l_perp1 + l_perp2
        d_perp = np.where(
            sums > 0.0,
            (l_perp1 * l_perp1 + l_perp2 * l_perp2)
            / np.where(sums > 0.0, sums, 1.0),
            0.0,
        )

        dots = svx * hvx + svy * hvy
        scale = dots * inv
        rjx = svx - scale * hvx
        rjy = svy - scale * hvy
        sin_term = np.sqrt(rjx * rjx + rjy * rjy)
        d_theta = np.where(dots > 0.0, sin_term, sub_lens)
        d_theta = np.where(sub_lens > 0.0, d_theta, 0.0)

        point_dist = np.sqrt(r1x * r1x + r1y * r1y)
        enc_perp = np.where(
            deg, clamped_log2(point_dist), clamped_log2(d_perp)
        )
        enc_theta = np.where(deg, 0.0, clamped_log2(d_theta))
        ldh = np.add.reduceat(enc_perp, offsets) + np.add.reduceat(
            enc_theta, offsets
        )
        ldh[counts == 1] = 0.0
        return lh, ldh, nopar
