"""Trajectory partitioning (Section 3): MDL cost model, the O(n)
approximate algorithm of Figure 8, the exact dynamic-programming
optimum, the precision measurement comparing the two, and the
resumable incremental scanner behind the streaming subsystem.

Phase-1 engines are selectable (``PARTITION_METHODS``): the
paper-literal per-trajectory **python** scan
(:mod:`repro.partition.approximate`), and the lock-step **batched**
corpus scanner (:mod:`repro.partition.batched`) that advances every
trajectory simultaneously through the shared multi-window MDL kernel
(:func:`~repro.partition.mdl.window_mdl_costs`) — bitwise-identical
characteristic points, interpreter work per global step instead of per
point.  ``partition_all(method="auto")`` picks between them; the
streaming subsystem's bulk-load seed path rides the batched engine and
hands its resumable scan states to the incremental scanner.
"""

from repro.partition.mdl import (
    clamped_log2,
    encoded_cost,
    lh_cost,
    ldh_cost,
    mdl_costs,
    mdl_par,
    mdl_nopar,
    window_mdl_costs,
)
from repro.partition.approximate import (
    AUTO_BATCH_MIN_TRAJECTORIES,
    PARTITION_METHODS,
    approximate_partition,
    partition_trajectory,
    partition_all,
    resolve_partition_method,
)
from repro.partition.batched import (
    batched_partition_all,
    batched_partition_arrays,
    lockstep_scan,
)
from repro.partition.exact import exact_partition
from repro.partition.incremental import IncrementalPartitioner
from repro.partition.precision import partitioning_precision

__all__ = [
    "clamped_log2",
    "encoded_cost",
    "lh_cost",
    "ldh_cost",
    "mdl_costs",
    "mdl_par",
    "mdl_nopar",
    "window_mdl_costs",
    "AUTO_BATCH_MIN_TRAJECTORIES",
    "PARTITION_METHODS",
    "approximate_partition",
    "partition_trajectory",
    "partition_all",
    "resolve_partition_method",
    "batched_partition_all",
    "batched_partition_arrays",
    "lockstep_scan",
    "exact_partition",
    "IncrementalPartitioner",
    "partitioning_precision",
]
