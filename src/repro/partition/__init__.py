"""Trajectory partitioning (Section 3): MDL cost model, the O(n)
approximate algorithm of Figure 8, the exact dynamic-programming
optimum, the precision measurement comparing the two, and the
resumable incremental scanner behind the streaming subsystem.
"""

from repro.partition.mdl import (
    encoded_cost,
    lh_cost,
    ldh_cost,
    mdl_par,
    mdl_nopar,
)
from repro.partition.approximate import (
    approximate_partition,
    partition_trajectory,
    partition_all,
)
from repro.partition.exact import exact_partition
from repro.partition.incremental import IncrementalPartitioner
from repro.partition.precision import partitioning_precision

__all__ = [
    "encoded_cost",
    "lh_cost",
    "ldh_cost",
    "mdl_par",
    "mdl_nopar",
    "approximate_partition",
    "partition_trajectory",
    "partition_all",
    "exact_partition",
    "IncrementalPartitioner",
    "partitioning_precision",
]
