"""Incremental MDL partitioning for streaming point appends.

Figure 8 scans a trajectory left to right keeping one candidate
partition ``p_startIndex .. p_currIndex``; each committed
characteristic point restarts the scan *at that point* and is never
revisited.  The loop body only reads ``points[start_index ..
curr_index]`` and the committed prefix, so appending points to the end
of the trajectory cannot change any already-committed characteristic
point — it merely resumes the scan where it stopped.

:class:`IncrementalPartitioner` exploits that: it persists the scan
state ``(start_index, length)`` between appends and replays the exact
Figure 8 loop over the grown buffer, so after any sequence of appends
its characteristic points are *identical* (not merely similar) to
:func:`repro.partition.approximate.approximate_partition` on the full
point array — the property tests in
``tests/property/test_stream_equivalence.py`` pin this.

Terminology used by the streaming layer on top:

* a **committed** characteristic point is one emitted by line 08 of
  Figure 8; the segment between two consecutive committed points is
  final and will never change;
* the **trailing** segment runs from the last committed point to the
  current last point (the forced endpoint of line 12).  Every append
  moves the trajectory's end, so the trailing segment is retracted and
  re-inserted on each append.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import PartitionError
from repro.partition.mdl import mdl_costs


class IncrementalPartitioner:
    """Figure 8 with a resumable scan state.

    Parameters
    ----------
    suppression:
        The Section 4.1.3 constant added to ``cost_nopar``; must match
        the value a batch comparison run would use.
    """

    __slots__ = ("suppression", "_buffer", "_n", "_committed", "_start", "_length")

    def __init__(self, suppression: float = 0.0):
        if suppression < 0:
            raise PartitionError(
                f"suppression must be non-negative, got {suppression}"
            )
        self.suppression = float(suppression)
        self._buffer: Optional[np.ndarray] = None
        self._n = 0
        self._committed: List[int] = []
        self._start = 0
        self._length = 1

    # -- state -------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self._n

    @property
    def dim(self) -> Optional[int]:
        return None if self._buffer is None else int(self._buffer.shape[1])

    @property
    def points(self) -> np.ndarray:
        """Read-only view of the points appended so far."""
        if self._buffer is None:
            raise PartitionError("no points appended yet")
        view = self._buffer[: self._n]
        view.setflags(write=False)
        return view

    @property
    def committed(self) -> List[int]:
        """The committed characteristic-point indices (line 08 commits;
        excludes the forced final endpoint)."""
        return list(self._committed)

    def characteristic_points(self) -> List[int]:
        """Exactly ``approximate_partition(self.points, suppression)``.

        Committed points plus the forced final endpoint (Figure 8 line
        12).  A single-point trajectory has ``[0]`` and no segments yet.
        """
        if self._n == 0:
            raise PartitionError("no points appended yet")
        cps = list(self._committed)
        if self._n - 1 > cps[-1]:
            cps.append(self._n - 1)
        return cps

    # -- ingestion ---------------------------------------------------------
    def _grow(self, extra: int, dim: int) -> None:
        if self._buffer is None:
            capacity = max(16, extra)
            self._buffer = np.empty((capacity, dim), dtype=np.float64)
        elif self._buffer.shape[1] != dim:
            raise PartitionError(
                f"appended points have dim {dim}, trajectory has "
                f"dim {self._buffer.shape[1]}"
            )
        needed = self._n + extra
        if needed > self._buffer.shape[0]:
            capacity = max(needed, 2 * self._buffer.shape[0])
            grown = np.empty((capacity, dim), dtype=np.float64)
            grown[: self._n] = self._buffer[: self._n]
            self._buffer = grown

    def append(
        self, new_points: Union[Sequence[Sequence[float]], np.ndarray]
    ) -> List[int]:
        """Append points and resume the Figure 8 scan.

        Returns the characteristic points *committed by this append*
        (strictly increasing, possibly empty).  The forced final
        endpoint is never in this list — it is the moving end of the
        trailing segment.
        """
        new_points = np.asarray(new_points, dtype=np.float64)
        if new_points.ndim == 1:
            new_points = new_points[None, :]
        if new_points.ndim != 2 or new_points.shape[0] == 0:
            raise PartitionError(
                f"need a non-empty (k, d) point array, got shape "
                f"{new_points.shape}"
            )
        if not np.all(np.isfinite(new_points)):
            raise PartitionError("trajectory points must be finite")
        self._grow(new_points.shape[0], new_points.shape[1])
        self._buffer[self._n : self._n + new_points.shape[0]] = new_points
        self._n += new_points.shape[0]
        if not self._committed:
            self._committed.append(0)  # Figure 8 line 01

        points = self._buffer[: self._n]
        newly: List[int] = []
        while self._start + self._length <= self._n - 1:  # line 03
            curr = self._start + self._length  # line 04
            cost_par, base_nopar = mdl_costs(points, self._start, curr)
            cost_nopar = base_nopar + self.suppression  # lines 05-06
            if cost_par > cost_nopar and curr - 1 > self._start:  # line 07
                self._committed.append(curr - 1)  # line 08
                newly.append(curr - 1)
                self._start, self._length = curr - 1, 1  # line 09
            else:
                self._length += 1  # line 11
        return newly

    # -- checkpointing -----------------------------------------------------
    def scan_state(self) -> "tuple[int, int]":
        """The resumable Figure 8 scan position ``(start_index, length)``."""
        return self._start, self._length

    @classmethod
    def restore(
        cls,
        suppression: float,
        points: np.ndarray,
        committed: Sequence[int],
        start_index: int,
        length: int,
    ) -> "IncrementalPartitioner":
        """Rebuild a partitioner from checkpointed state (the inverse of
        reading :attr:`points`, :attr:`committed`, :meth:`scan_state`)."""
        partitioner = cls(suppression)
        points = np.asarray(points, dtype=np.float64)
        if points.shape[0]:
            partitioner._grow(points.shape[0], points.shape[1])
            partitioner._buffer[: points.shape[0]] = points
            partitioner._n = points.shape[0]
        partitioner._committed = [int(c) for c in committed]
        partitioner._start = int(start_index)
        partitioner._length = int(length)
        return partitioner

    def __repr__(self) -> str:
        return (
            f"IncrementalPartitioner(n_points={self._n}, "
            f"n_committed={len(self._committed)}, "
            f"suppression={self.suppression})"
        )
