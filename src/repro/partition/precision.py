"""Precision of the approximate partitioning vs the exact optimum.

Section 3.3: "Our experience indicates that the precision is about 80 %
on average, which means that 80 % of the approximate solutions appear
also in the exact solutions."  We read "solutions" as characteristic
points: precision = |approx ∩ exact| / |approx|.

The trivial endpoints (first and last point, present in every solution
by construction) can be excluded to avoid inflating the score; the
paper does not specify, so both modes are offered and the benchmark
reports the inclusive one (matching the 80 % ballpark) alongside the
strict one.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import PartitionError


def partitioning_precision(
    approximate: Sequence[int],
    exact: Sequence[int],
    include_endpoints: bool = True,
) -> float:
    """Fraction of approximate characteristic points confirmed by the
    exact optimum.

    Parameters
    ----------
    approximate, exact:
        Characteristic-point index lists for the *same* trajectory;
        both must start and end at the same indices.
    include_endpoints:
        When False, the shared first/last indices are dropped before
        computing the ratio.  A trajectory whose approximate solution
        has *only* endpoints then scores 1.0 by convention (there was
        nothing to get wrong).
    """
    approximate = list(approximate)
    exact = list(exact)
    if not approximate or not exact:
        raise PartitionError("characteristic point lists must be non-empty")
    if approximate[0] != exact[0] or approximate[-1] != exact[-1]:
        raise PartitionError(
            "the two solutions do not describe the same trajectory: "
            f"endpoints {approximate[0]}..{approximate[-1]} vs "
            f"{exact[0]}..{exact[-1]}"
        )
    if not include_endpoints:
        approximate = approximate[1:-1]
        exact_set = set(exact[1:-1])
        if not approximate:
            return 1.0
    else:
        exact_set = set(exact)
    hits = sum(1 for c in approximate if c in exact_set)
    return hits / len(approximate)
