"""Exact MDL-optimal trajectory partitioning.

Section 3.3 notes that the cost of finding the optimal partitioning "is
prohibitive since we need to consider every subset of the points".  The
MDL cost is, however, *additive over partitions*: the total cost of a
characteristic-point set ``{c_1, ..., c_m}`` is the sum of
``MDL_par(p_ck, p_ck+1)`` over consecutive pairs.  The optimum is
therefore the shortest path from point 0 to point n-1 in the DAG whose
edge ``(i, j)`` costs ``MDL_par(p_i, p_j)`` — computable in O(n^2)
edge relaxations (each edge cost itself costs O(j - i)).

This module exists to *measure* the paper's ~80 % precision claim for
the approximate algorithm (Figure 9 discussion), and as a reference
implementation for small trajectories.  It is O(n^3) worst case, so it
is intended for trajectories up to a few hundred points.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import PartitionError
from repro.partition.mdl import mdl_par


def exact_partition(points: np.ndarray, max_points: int = 2000) -> List[int]:
    """Globally MDL-optimal characteristic-point indices.

    Parameters
    ----------
    points:
        ``(n, d)`` trajectory points, ``n >= 2``.
    max_points:
        Safety limit; the DP is cubic, so refuse absurdly long inputs
        instead of hanging.

    Returns
    -------
    list[int]
        The optimal strictly increasing characteristic points,
        beginning at 0 and ending at ``n - 1``.  When several optimal
        solutions exist the one preferring *later* predecessors (longer
        final partitions, matching the paper's conciseness bias) is
        returned.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise PartitionError(
            f"need an (n >= 2, d) point array, got shape {points.shape}"
        )
    n = points.shape[0]
    if n > max_points:
        raise PartitionError(
            f"exact partitioning is cubic; {n} points exceeds max_points="
            f"{max_points}"
        )

    best_cost = np.full(n, np.inf)
    best_prev = np.full(n, -1, dtype=np.int64)
    best_cost[0] = 0.0
    for j in range(1, n):
        for i in range(j):
            candidate = best_cost[i] + mdl_par(points, i, j)
            # "<=" prefers the larger i (longer last partition) on ties.
            if candidate <= best_cost[j]:
                best_cost[j] = candidate
                best_prev[j] = i

    # Reconstruct the path n-1 -> 0.
    path = [n - 1]
    while path[-1] != 0:
        path.append(int(best_prev[path[-1]]))
    path.reverse()
    return path
