"""Approximate Trajectory Partitioning — Figure 8 of the paper.

Scans the trajectory keeping a growing candidate partition
``p_startIndex .. p_currIndex``; the moment partitioning
(``MDL_par``) costs more than not partitioning (``MDL_nopar``), the
previous point becomes a characteristic point and the scan restarts
there.  Lemma 1: the number of MDL evaluations is linear in the number
of points.

Section 4.1.3 adds one practical refinement: very short partitions harm
clustering (a short segment's angle distance is tiny regardless of the
actual angle), so partitioning can be *suppressed* by adding a small
constant to ``cost_nopar``, lengthening partitions by 20-30 %.  That
constant is the ``suppression`` parameter below.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import PartitionError
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.partition.mdl import mdl_nopar, mdl_par


def approximate_partition(
    points: np.ndarray, suppression: float = 0.0
) -> List[int]:
    """Characteristic-point indices for one trajectory (Figure 8).

    Parameters
    ----------
    points:
        ``(n, d)`` array of trajectory points, ``n >= 2``.
    suppression:
        Non-negative constant added to ``cost_nopar`` (Section 4.1.3);
        larger values yield fewer, longer partitions.  0 reproduces
        Figure 8 verbatim.

    Returns
    -------
    list[int]
        Strictly increasing indices, always starting at 0 and ending at
        ``n - 1``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise PartitionError(
            f"need an (n >= 2, d) point array, got shape {points.shape}"
        )
    if suppression < 0:
        raise PartitionError(f"suppression must be non-negative, got {suppression}")

    n = points.shape[0]
    characteristic = [0]  # line 01: the starting point
    start_index, length = 0, 1  # line 02
    while start_index + length <= n - 1:  # line 03 (0-based bound)
        curr_index = start_index + length  # line 04
        cost_par = mdl_par(points, start_index, curr_index)  # line 05
        cost_nopar = mdl_nopar(points, start_index, curr_index) + suppression
        if cost_par > cost_nopar and curr_index - 1 > start_index:  # line 07
            # The guard `curr_index - 1 > start_index` cannot fire on the
            # very first step (cost_par == cost_nopar exactly when the
            # candidate is a single original segment) but protects
            # against a non-terminating rescan under extreme float noise.
            characteristic.append(curr_index - 1)  # line 08
            start_index, length = curr_index - 1, 1  # line 09
        else:
            length += 1  # line 11
    if characteristic[-1] != n - 1:
        characteristic.append(n - 1)  # line 12: the ending point
    return characteristic


def partition_trajectory(
    trajectory: Trajectory, suppression: float = 0.0
) -> List[int]:
    """Characteristic points of a :class:`Trajectory` (Figure 8)."""
    return approximate_partition(trajectory.points, suppression=suppression)


def partition_all(
    trajectories: Sequence[Trajectory], suppression: float = 0.0
) -> "tuple[SegmentSet, List[List[int]]]":
    """The whole partitioning phase of TRACLUS (Figure 4, lines 01-03).

    Runs Figure 8 on every trajectory and accumulates the resulting
    trajectory partitions into one :class:`SegmentSet` ``D``.

    Returns ``(segments, characteristic_points)``.
    """
    all_cps: List[List[int]] = [
        partition_trajectory(trajectory, suppression=suppression)
        for trajectory in trajectories
    ]
    segments = SegmentSet.from_partitions(trajectories, all_cps)
    return segments, all_cps
