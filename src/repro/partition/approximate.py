"""Approximate Trajectory Partitioning — Figure 8 of the paper.

Scans the trajectory keeping a growing candidate partition
``p_startIndex .. p_currIndex``; the moment partitioning
(``MDL_par``) costs more than not partitioning (``MDL_nopar``), the
previous point becomes a characteristic point and the scan restarts
there.  Lemma 1: the number of MDL evaluations is linear in the number
of points.

Section 4.1.3 adds one practical refinement: very short partitions harm
clustering (a short segment's angle distance is tiny regardless of the
actual angle), so partitioning can be *suppressed* by adding a small
constant to ``cost_nopar``, lengthening partitions by 20-30 %.  That
constant is the ``suppression`` parameter below.

This module holds the paper-literal **python engine** (one trajectory
at a time) and the engine-selection front door :func:`partition_all`;
the lock-step **batched engine** — same characteristic points, bitwise,
from one vectorized scan over the whole corpus — lives in
:mod:`repro.partition.batched` and is what ``method="auto"`` picks for
multi-trajectory corpora.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.config import PARTITION_AUTO_BATCH_TRAJECTORIES
from repro.exceptions import PartitionError
from repro.model.segmentset import SegmentSet
from repro.model.trajectory import Trajectory
from repro.partition.batched import batched_partition_all
from repro.partition.mdl import mdl_costs


def approximate_partition(
    points: np.ndarray, suppression: float = 0.0
) -> List[int]:
    """Characteristic-point indices for one trajectory (Figure 8).

    Parameters
    ----------
    points:
        ``(n, d)`` array of trajectory points, ``n >= 2``.
    suppression:
        Non-negative constant added to ``cost_nopar`` (Section 4.1.3);
        larger values yield fewer, longer partitions.  0 reproduces
        Figure 8 verbatim.

    Returns
    -------
    list[int]
        Strictly increasing indices, always starting at 0 and ending at
        ``n - 1``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise PartitionError(
            f"need an (n >= 2, d) point array, got shape {points.shape}"
        )
    if suppression < 0:
        raise PartitionError(f"suppression must be non-negative, got {suppression}")

    n = points.shape[0]
    characteristic = [0]  # line 01: the starting point
    start_index, length = 0, 1  # line 02
    while start_index + length <= n - 1:  # line 03 (0-based bound)
        curr_index = start_index + length  # line 04
        cost_par, base_nopar = mdl_costs(points, start_index, curr_index)
        cost_nopar = base_nopar + suppression  # lines 05-06
        if cost_par > cost_nopar and curr_index - 1 > start_index:  # line 07
            # The guard `curr_index - 1 > start_index` cannot fire on the
            # very first step (cost_par == cost_nopar exactly when the
            # candidate is a single original segment) but protects
            # against a non-terminating rescan under extreme float noise.
            characteristic.append(curr_index - 1)  # line 08
            start_index, length = curr_index - 1, 1  # line 09
        else:
            length += 1  # line 11
    if characteristic[-1] != n - 1:
        characteristic.append(n - 1)  # line 12: the ending point
    return characteristic


def partition_trajectory(
    trajectory: Trajectory, suppression: float = 0.0
) -> List[int]:
    """Characteristic points of a :class:`Trajectory` (Figure 8)."""
    return approximate_partition(trajectory.points, suppression=suppression)


#: Selectable phase-1 engines (mirrors ``NEIGHBORHOOD_METHODS`` for the
#: ε-queries of phase 2): ``"python"`` is the per-trajectory Figure-8
#: scan above, ``"batched"`` the lock-step corpus scanner of
#: :mod:`repro.partition.batched`, and ``"auto"`` picks between them.
PARTITION_METHODS = ("auto", "python", "batched")

#: ``"auto"`` picks the batched engine from this many trajectories up.
#: The lock-step scan wins as soon as there is more than one trajectory
#: to advance per global step; driving a *single* trajectory through it
#: degenerates to the python scan plus ragged-gather overhead (~1.5x
#: slower), so solo trajectories stay on the python engine.  The number
#: itself lives in :mod:`repro.core.config` next to every other
#: auto-selection threshold; this is a re-export for engine-level
#: consumers.
AUTO_BATCH_MIN_TRAJECTORIES = PARTITION_AUTO_BATCH_TRAJECTORIES


def resolve_partition_method(
    method: str, n_trajectories: int
) -> str:
    """Resolve ``"auto"`` to a concrete engine for a corpus size."""
    if method not in PARTITION_METHODS:
        raise PartitionError(
            f"unknown partition method {method!r}; expected one of "
            f"{PARTITION_METHODS}"
        )
    if method != "auto":
        return method
    return (
        "batched"
        if n_trajectories >= AUTO_BATCH_MIN_TRAJECTORIES
        else "python"
    )


def partition_all(
    trajectories: Sequence[Trajectory],
    suppression: float = 0.0,
    method: str = "auto",
) -> "tuple[SegmentSet, List[List[int]]]":
    """The whole partitioning phase of TRACLUS (Figure 4, lines 01-03).

    Runs Figure 8 on every trajectory and accumulates the resulting
    trajectory partitions into one :class:`SegmentSet` ``D``.

    ``method`` selects the phase-1 engine: ``"python"`` scans one
    trajectory at a time, ``"batched"`` advances all trajectories in
    lock-step through the shared cost kernel
    (:mod:`repro.partition.batched` — bitwise-identical characteristic
    points, one interpreter step per global scan step), and ``"auto"``
    (default) picks the batched engine whenever the corpus has at least
    :data:`AUTO_BATCH_MIN_TRAJECTORIES` trajectories.

    Returns ``(segments, characteristic_points)``.
    """
    resolved = resolve_partition_method(method, len(trajectories))
    if resolved == "batched":
        return batched_partition_all(trajectories, suppression=suppression)
    all_cps: List[List[int]] = [
        partition_trajectory(trajectory, suppression=suppression)
        for trajectory in trajectories
    ]
    segments = SegmentSet.from_partitions(trajectories, all_cps)
    return segments, all_cps
