"""The MDL cost model for trajectory partitioning (Section 3.2).

Two-part code: ``L(H)`` is the description length of the hypothesis (a
set of trajectory partitions) and ``L(D|H)`` the description length of
the data given the hypothesis.

* Formula (6): ``L(H) = sum_j log2(len(p_cj p_cj+1))`` — the lengths of
  the partitions, *not* their endpoint coordinates, so the cost (and
  hence the partitioning) is invariant under translation (Appendix C).
* Formula (7): ``L(D|H) = sum_j sum_k log2(d_perp(part_j, seg_k)) +
  log2(d_theta(part_j, seg_k))`` over the original segments ``seg_k``
  enclosed by each partition.  The parallel distance is omitted because
  a partition encloses its segments.

Real values are encoded with precision ``delta = 1`` (Section 3.2), so
``L(x) = log2(x)``; values below 1 encode in 0 bits — this clamp is
centralised in :func:`clamped_log2` (array) and its scalar facade
:func:`encoded_cost`.

The distance components inside ``L(D|H)`` treat the *partition* as the
reference line ``Li`` (that is how Formula (7) writes its arguments:
the hypothesis segment first), and use the directed angle distance.

Engine-sharing contract
-----------------------
Both phase-1 engines — the per-trajectory Python scan
(:mod:`repro.partition.approximate`, :mod:`repro.partition.incremental`)
and the lock-step batched scanner (:mod:`repro.partition.batched`) —
evaluate their costs through the *same* multi-window kernel,
:func:`window_mdl_costs`.  Every elementwise operation is an IEEE-exact
ufunc (no BLAS mat-vec, whose FMA use would differ from an explicit
multiply-add) and every per-window sum is a ``np.add.reduceat`` over a
contiguous slice, so a window's costs are bitwise identical whether it
is evaluated alone (the scalar :func:`mdl_par`/:func:`mdl_nopar`
wrappers) or flattened next to a thousand other windows.  Identical
cost bits mean identical Figure-8 comparisons, which is what lets the
batched engine promise *exactly* equal characteristic points.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import PartitionError


def clamped_log2(values: np.ndarray) -> np.ndarray:
    """``L(x)`` in bits at precision delta = 1: ``log2(x)``, clamped to
    0 for ``x < 1`` (such values round to an integer representable in
    zero bits).  Elementwise over any shape; the single clamped-log2
    used by every engine."""
    return np.log2(np.maximum(values, 1.0))


def encoded_cost(x: float) -> float:
    """Scalar facade over :func:`clamped_log2`."""
    return float(clamped_log2(np.float64(x)))


def _check_indices(points: np.ndarray, i: int, j: int) -> None:
    if points.ndim != 2:
        raise PartitionError(f"points must be (n, d), got shape {points.shape}")
    n = points.shape[0]
    if not (0 <= i < j < n):
        raise PartitionError(
            f"need 0 <= i < j < {n}, got i={i}, j={j}"
        )


def window_mdl_costs(
    hyp_starts: np.ndarray,
    hyp_ends: np.ndarray,
    sub_starts: np.ndarray,
    sub_ends: np.ndarray,
    window_of: np.ndarray,
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """MDL cost components of many candidate partitions at once.

    Window ``w`` hypothesises one partition ``hyp_starts[w] ->
    hyp_ends[w]`` over the enclosed original segments
    ``sub_starts[k] -> sub_ends[k]`` for ``k`` in the contiguous flat
    range ``offsets[w] .. offsets[w+1]-1`` (the last window runs to the
    end of the flat arrays).  ``window_of[k]`` maps flat segment ``k``
    back to its window; every window must enclose at least one segment.

    Returns ``(lh, ldh, nopar)`` per window: Formula (6), Formula (7),
    and the no-partitioning cost (the summed encoded lengths of the
    enclosed segments).  ``MDL_par = lh + ldh``; ``MDL_nopar = nopar``.

    A window whose hypothesis has (numerically) zero length falls back
    to encoded point distances with zero angle contribution, and a
    window enclosing exactly one segment — which in Figure-8 use *is*
    the hypothesis — has ``ldh == 0.0`` exactly, both mirroring the
    historical scalar behavior.

    When a compiled kernel backend is active (``repro.kernels``), the
    per-element geometry runs compiled and only the ``log2`` encodings
    and ``reduceat`` reductions below run in numpy — bitwise identical
    by the backends' parity contract.
    """
    n_windows = hyp_starts.shape[0]
    if n_windows == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy(), empty.copy()

    from repro import kernels

    backend = kernels.active_backend()
    if backend is not None and hyp_starts.shape[1] <= kernels.MAX_COMPILED_DIM:
        with kernels.maybe_time("mdl_geometry", backend.name):
            hyp_len, perp_in, theta_in, sub_lens = backend.mdl_geometry(
                np.ascontiguousarray(hyp_starts, dtype=np.float64),
                np.ascontiguousarray(hyp_ends, dtype=np.float64),
                np.ascontiguousarray(sub_starts, dtype=np.float64),
                np.ascontiguousarray(sub_ends, dtype=np.float64),
                np.ascontiguousarray(window_of, dtype=np.int64),
            )
        lh = clamped_log2(hyp_len)
        nopar = np.add.reduceat(clamped_log2(sub_lens), offsets)
        # theta_input is 1.0 on degenerate-hypothesis windows, so the
        # clamp encodes their zero angle contribution exactly.
        ldh = np.add.reduceat(clamped_log2(perp_in), offsets) + np.add.reduceat(
            clamped_log2(theta_in), offsets
        )
        counts = np.diff(offsets, append=sub_starts.shape[0])
        ldh[counts == 1] = 0.0
        return lh, ldh, nopar

    return _window_mdl_costs_numpy(
        hyp_starts, hyp_ends, sub_starts, sub_ends, window_of, offsets
    )


def _window_mdl_costs_numpy(
    hyp_starts: np.ndarray,
    hyp_ends: np.ndarray,
    sub_starts: np.ndarray,
    sub_ends: np.ndarray,
    window_of: np.ndarray,
    offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The pure-numpy kernel — always available, and the bitwise
    reference the compiled backends are parity-gated against
    (:mod:`repro.kernels.selftest`)."""
    hyp_vecs = hyp_ends - hyp_starts
    hyp_sq = np.sum(hyp_vecs * hyp_vecs, axis=1)
    lh = clamped_log2(np.sqrt(hyp_sq))

    # Closed-loop (or numerically zero-length: subnormal squared
    # lengths overflow 1/x) hypotheses: no supporting line; fall back
    # to point distances from the hypothesis point, with zero angle
    # contribution (a point has no direction).
    degenerate = hyp_sq < np.finfo(np.float64).tiny
    inv_sq = 1.0 / np.where(degenerate, 1.0, hyp_sq)

    hv = hyp_vecs[window_of]
    hs = hyp_starts[window_of]
    inv = inv_sq[window_of]
    deg = degenerate[window_of]

    sub_vecs = sub_ends - sub_starts
    sub_lens = np.sqrt(np.sum(sub_vecs * sub_vecs, axis=1))
    nopar = np.add.reduceat(clamped_log2(sub_lens), offsets)

    # Perpendicular component (Definition 1) with the partition as Li.
    rel1 = sub_starts - hs
    rel2 = sub_ends - hs
    u1 = np.sum(rel1 * hv, axis=1) * inv
    u2 = np.sum(rel2 * hv, axis=1) * inv
    off1 = sub_starts - (hs + u1[:, None] * hv)
    off2 = sub_ends - (hs + u2[:, None] * hv)
    l_perp1 = np.sqrt(np.sum(off1 * off1, axis=1))
    l_perp2 = np.sqrt(np.sum(off2 * off2, axis=1))
    sums = l_perp1 + l_perp2
    d_perp = np.where(
        sums > 0.0,
        (l_perp1 * l_perp1 + l_perp2 * l_perp2)
        / np.where(sums > 0.0, sums, 1.0),
        0.0,
    )

    # Angle component (Definition 3, directed) with ||Lj|| = enclosed
    # segment length; ||Lj||*sin(theta) via the rejection norm (stable
    # near parallel, matching repro.distance exactly).
    dots = np.sum(sub_vecs * hv, axis=1)
    rejection = sub_vecs - (dots * inv)[:, None] * hv
    sin_term = np.sqrt(np.sum(rejection * rejection, axis=1))
    d_theta = np.where(dots > 0.0, sin_term, sub_lens)
    d_theta = np.where(sub_lens > 0.0, d_theta, 0.0)

    point_dist = np.sqrt(np.sum(rel1 * rel1, axis=1))
    enc_perp = np.where(deg, clamped_log2(point_dist), clamped_log2(d_perp))
    enc_theta = np.where(deg, 0.0, clamped_log2(d_theta))
    ldh = np.add.reduceat(enc_perp, offsets) + np.add.reduceat(
        enc_theta, offsets
    )

    # One enclosed segment identical to the hypothesis: both distances
    # are 0, encoding in 0 bits.
    counts = np.diff(offsets, append=sub_starts.shape[0])
    ldh[counts == 1] = 0.0
    return lh, ldh, nopar


_ZERO_OFFSET = np.zeros(1, dtype=np.int64)


def _single_window(
    points: np.ndarray, i: int, j: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`window_mdl_costs` of the one window ``p_i .. p_j``."""
    _check_indices(points, i, j)
    window_of = np.zeros(j - i, dtype=np.int64)
    return window_mdl_costs(
        points[i][None, :],
        points[j][None, :],
        points[i:j],
        points[i + 1 : j + 1],
        window_of,
        _ZERO_OFFSET,
    )


def lh_cost(points: np.ndarray, i: int, j: int) -> float:
    """``L(H)`` of the single partition ``p_i p_j`` — Formula (6) for a
    one-segment hypothesis: ``log2(len(p_i p_j))``."""
    lh, _, _ = _single_window(points, i, j)
    return float(lh[0])


def ldh_cost(points: np.ndarray, i: int, j: int) -> float:
    """``L(D|H)`` of the partition ``p_i p_j`` against the enclosed
    original segments ``p_k p_k+1`` for ``i <= k <= j-1`` — Formula (7).

    Fully vectorized over the enclosed segments."""
    _, ldh, _ = _single_window(points, i, j)
    return float(ldh[0])


def mdl_costs(points: np.ndarray, i: int, j: int) -> Tuple[float, float]:
    """``(MDL_par, MDL_nopar)`` of the window ``p_i .. p_j`` in one
    kernel evaluation — the Figure-8 scan loops compare both every
    step, so fusing them halves the per-step cost."""
    lh, ldh, nopar = _single_window(points, i, j)
    return float(lh[0]) + float(ldh[0]), float(nopar[0])


def mdl_par(points: np.ndarray, i: int, j: int) -> float:
    """``MDL_par(p_i, p_j)`` — the MDL cost when ``p_i`` and ``p_j``
    are the only characteristic points of the stretch: ``L(H) + L(D|H)``
    (Section 3.3)."""
    lh, ldh, _ = _single_window(points, i, j)
    return float(lh[0]) + float(ldh[0])


def mdl_nopar(points: np.ndarray, i: int, j: int) -> float:
    """``MDL_nopar(p_i, p_j)`` — the MDL cost of preserving the original
    trajectory between ``p_i`` and ``p_j``; ``L(D|H)`` is zero there, so
    the cost is the summed encoded length of the original segments."""
    _, _, nopar = _single_window(points, i, j)
    return float(nopar[0])
