"""The MDL cost model for trajectory partitioning (Section 3.2).

Two-part code: ``L(H)`` is the description length of the hypothesis (a
set of trajectory partitions) and ``L(D|H)`` the description length of
the data given the hypothesis.

* Formula (6): ``L(H) = sum_j log2(len(p_cj p_cj+1))`` — the lengths of
  the partitions, *not* their endpoint coordinates, so the cost (and
  hence the partitioning) is invariant under translation (Appendix C).
* Formula (7): ``L(D|H) = sum_j sum_k log2(d_perp(part_j, seg_k)) +
  log2(d_theta(part_j, seg_k))`` over the original segments ``seg_k``
  enclosed by each partition.  The parallel distance is omitted because
  a partition encloses its segments.

Real values are encoded with precision ``delta = 1`` (Section 3.2), so
``L(x) = log2(x)``; values below 1 encode in 0 bits — this clamp is
centralised in :func:`encoded_cost`.

The distance components inside ``L(D|H)`` treat the *partition* as the
reference line ``Li`` (that is how Formula (7) writes its arguments:
the hypothesis segment first), and use the directed angle distance.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import PartitionError


def encoded_cost(x: float) -> float:
    """``L(x)`` in bits at precision delta = 1: ``log2(x)``, clamped to
    0 for ``x < 1`` (such values round to an integer representable in
    zero bits)."""
    if x < 1.0:
        return 0.0
    return math.log2(x)


def _encoded_cost_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`encoded_cost`."""
    clamped = np.maximum(values, 1.0)
    return np.log2(clamped)


def _check_indices(points: np.ndarray, i: int, j: int) -> None:
    if points.ndim != 2:
        raise PartitionError(f"points must be (n, d), got shape {points.shape}")
    n = points.shape[0]
    if not (0 <= i < j < n):
        raise PartitionError(
            f"need 0 <= i < j < {n}, got i={i}, j={j}"
        )


def lh_cost(points: np.ndarray, i: int, j: int) -> float:
    """``L(H)`` of the single partition ``p_i p_j`` — Formula (6) for a
    one-segment hypothesis: ``log2(len(p_i p_j))``."""
    _check_indices(points, i, j)
    length = float(np.linalg.norm(points[j] - points[i]))
    return encoded_cost(length)


def ldh_cost(points: np.ndarray, i: int, j: int) -> float:
    """``L(D|H)`` of the partition ``p_i p_j`` against the enclosed
    original segments ``p_k p_k+1`` for ``i <= k <= j-1`` — Formula (7).

    Fully vectorized over the enclosed segments.
    """
    _check_indices(points, i, j)
    if j == i + 1:
        # One enclosed segment identical to the hypothesis: both
        # distances are 0, encoding in 0 bits.
        return 0.0

    hyp_vec = points[j] - points[i]
    hyp_sq = float(np.dot(hyp_vec, hyp_vec))

    sub_starts = points[i:j]
    sub_ends = points[i + 1 : j + 1]
    sub_vecs = sub_ends - sub_starts
    sub_lens = np.linalg.norm(sub_vecs, axis=1)

    if hyp_sq < np.finfo(np.float64).tiny:
        # Closed-loop (or numerically zero-length: subnormal squared
        # lengths overflow 1/x) hypothesis: no supporting line; fall
        # back to point distances from the hypothesis point, with zero
        # angle contribution (a point has no direction).
        perp = np.linalg.norm(sub_starts - points[i], axis=1)
        return float(np.sum(_encoded_cost_array(perp)))

    # Perpendicular component (Definition 1) with the partition as Li.
    inv_sq = 1.0 / hyp_sq
    u1 = (sub_starts - points[i]) @ hyp_vec * inv_sq
    u2 = (sub_ends - points[i]) @ hyp_vec * inv_sq
    proj1 = points[i] + u1[:, None] * hyp_vec
    proj2 = points[i] + u2[:, None] * hyp_vec
    l_perp1 = np.linalg.norm(sub_starts - proj1, axis=1)
    l_perp2 = np.linalg.norm(sub_ends - proj2, axis=1)
    sums = l_perp1 + l_perp2
    d_perp = np.where(
        sums > 0.0,
        (l_perp1**2 + l_perp2**2) / np.where(sums > 0.0, sums, 1.0),
        0.0,
    )

    # Angle component (Definition 3, directed) with ||Lj|| = enclosed
    # segment length; ||Lj||*sin(theta) via the rejection norm (stable
    # near parallel, matching repro.distance exactly).
    dots = sub_vecs @ hyp_vec
    rejection = sub_vecs - (dots * inv_sq)[:, None] * hyp_vec
    sin_term = np.linalg.norm(rejection, axis=1)
    d_theta = np.where(dots > 0.0, sin_term, sub_lens)
    d_theta = np.where(sub_lens > 0.0, d_theta, 0.0)

    return float(
        np.sum(_encoded_cost_array(d_perp)) + np.sum(_encoded_cost_array(d_theta))
    )


def mdl_par(points: np.ndarray, i: int, j: int) -> float:
    """``MDL_par(p_i, p_j)`` — the MDL cost when ``p_i`` and ``p_j``
    are the only characteristic points of the stretch: ``L(H) + L(D|H)``
    (Section 3.3)."""
    return lh_cost(points, i, j) + ldh_cost(points, i, j)


def mdl_nopar(points: np.ndarray, i: int, j: int) -> float:
    """``MDL_nopar(p_i, p_j)`` — the MDL cost of preserving the original
    trajectory between ``p_i`` and ``p_j``; ``L(D|H)`` is zero there, so
    the cost is the summed encoded length of the original segments."""
    _check_indices(points, i, j)
    sub_lens = np.linalg.norm(points[i + 1 : j + 1] - points[i:j], axis=1)
    return float(np.sum(_encoded_cost_array(sub_lens)))
