"""The asyncio front-end: many corpora, many clients, one cache.

:class:`ServeApp` is the transport-independent request layer — tests
drive it directly, the HTTP adapter below wraps it for ``repro serve``.
Three mechanisms turn the single-corpus Workspace library into a
service:

* **Process-pool sharding.**  Every operation is CPU-bound numpy work
  (:mod:`repro.serve.worker`); the event loop never runs it.  With
  ``workers > 0`` requests fan out over a ``ProcessPoolExecutor``
  whose workers hold process-local workspace registries over the
  shared npz directory; ``workers == 0`` runs the same code on a
  thread (small deployments, tests).
* **Single-flight coalescing.**  Concurrent requests for the same
  ``(corpus, op, params)`` key collapse into one in-flight build whose
  result every waiter shares — a cold-cache stampede performs each
  expensive build exactly once (the per-artifact single-writer rule).
* **Read-through warm path.**  Workers consult their in-memory object
  tier, then the npz tier, then compute; every response carries which
  stages were actually rebuilt, and :class:`ServeStats` aggregates
  them into the artifact hit rate the load benchmark gates.

The HTTP layer is a deliberately minimal zero-dependency HTTP/1.1
subset (GET/POST, JSON bodies, keep-alive) — enough for load-balanced
JSON clients and the replay benchmark, not a general web server.

Endpoints::

    GET  /healthz
    GET  /stats
    GET  /corpora
    POST /corpora/<name>/<op>     op in {params, labels, fit, sweep,
                                         quality}; JSON params body
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import ServeError
from repro.serve import worker
from repro.serve.registry import CorpusSpec, WorkspaceRegistry

#: Hard cap on request bodies (a params JSON is tiny; anything bigger
#: is a client error, not a workload).
MAX_BODY_BYTES = 1 << 20


@dataclass
class ServeStats:
    """Aggregated traffic counters of one server instance."""

    requests: int = 0
    #: Requests served without recomputing any pipeline stage (memory
    #: or npz artifacts all the way down) — includes coalesced waiters,
    #: which by construction triggered no build of their own.
    artifact_hits: int = 0
    #: Requests that joined another request's in-flight build.
    coalesced: int = 0
    errors: int = 0
    #: Stage -> total rebuild count across every worker process.
    builds: Dict[str, int] = field(default_factory=dict)

    def hit_rate(self) -> float:
        return self.artifact_hits / self.requests if self.requests else 0.0

    def build_total(self) -> int:
        return sum(self.builds.values())

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "artifact_hits": self.artifact_hits,
            "hit_rate": self.hit_rate(),
            "coalesced": self.coalesced,
            "errors": self.errors,
            "builds": dict(self.builds),
        }


class ServeApp:
    """Transport-independent request layer over a corpus registry."""

    def __init__(
        self,
        specs: Sequence[CorpusSpec],
        cache_dir: Optional[str] = None,
        workers: int = 0,
        max_workspaces: int = 8,
        max_disk_bytes: Optional[int] = None,
    ):
        if workers < 0:
            raise ServeError("workers must be >= 0")
        self.specs = list(specs)
        self.cache_dir = cache_dir
        self.workers = workers
        self.max_workspaces = max_workspaces
        self.max_disk_bytes = max_disk_bytes
        self.stats = ServeStats()
        # The front-end's own registry serves only metadata (names,
        # fingerprints); computation happens in the executor.
        self._registry = WorkspaceRegistry(
            specs,
            cache_dir=cache_dir,
            max_workspaces=max_workspaces,
            max_disk_bytes=max_disk_bytes,
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        if workers > 0:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=worker.initialize,
                initargs=(
                    self.specs, cache_dir, max_workspaces, max_disk_bytes
                ),
            )
            # Force the pool to fork NOW, before any client connection
            # exists: the executor otherwise spawns its workers on the
            # first submit, mid-request, and (with the default fork
            # start method) each long-lived worker would inherit a
            # duplicate of the open client socket — so the client's
            # wait-for-EOF after ``Connection: close`` never returns.
            self._executor.submit(worker.ping).result()
        else:
            # Inline mode: the server process is its own (threaded)
            # worker.
            worker.initialize(
                self.specs, cache_dir, max_workspaces, max_disk_bytes
            )

    # -- metadata ----------------------------------------------------------
    def corpora(self) -> list:
        return [
            {
                "name": name,
                "fingerprint": self._registry.fingerprint(name),
            }
            for name in self._registry.names()
        ]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- the request path --------------------------------------------------
    @staticmethod
    def request_key(name: str, op: str, params: dict) -> str:
        """Canonical identity of a request — the coalescing key."""
        return json.dumps([name, op, params], sort_keys=True)

    async def request(self, name: str, op: str, params: dict) -> dict:
        """Serve one operation; concurrent identical requests coalesce
        into a single build whose result all of them share."""
        if name not in self._registry.specs:
            raise ServeError(
                f"unknown corpus {name!r}; serving {self._registry.names()}"
            )
        if op not in worker.OPERATIONS:
            raise ServeError(
                f"unknown operation {op!r}; one of "
                f"{sorted(worker.OPERATIONS)}"
            )
        key = self.request_key(name, op, params)
        self.stats.requests += 1
        existing = self._inflight.get(key)
        if existing is not None:
            # Join the in-flight build: by construction this request
            # triggers no redundant work, which is what the hit-rate
            # metric measures.
            self.stats.coalesced += 1
            payload = await asyncio.shield(existing)
            if "error" in payload:
                raise ServeError(payload["error"])
            self.stats.artifact_hits += 1
            return payload["result"]
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            payload = await loop.run_in_executor(
                self._executor, worker.compute_safe, name, op, params
            )
            future.set_result(payload)
        except BaseException as error:
            future.set_exception(error)
            # A waiter may never await it; don't warn on teardown.
            future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        for stage, count in payload.get("builds", {}).items():
            self.stats.builds[stage] = (
                self.stats.builds.get(stage, 0) + count
            )
        if "error" in payload:
            raise ServeError(payload["error"])
        if not payload.get("builds"):
            self.stats.artifact_hits += 1
        return payload["result"]


# -- HTTP adapter -----------------------------------------------------------

def _response_bytes(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 413: "Payload Too Large",
              500: "Internal Server Error"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def _coerce_query_params(pairs) -> dict:
    """Query-string params: floats where possible, comma lists for the
    grid parameters (``eps_values=1,2,3``)."""
    params: dict = {}
    for key, value in pairs:
        if key in ("eps_values", "min_lns_values"):
            params[key] = [float(v) for v in value.split(",") if v.strip()]
        else:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, dict, bool]]:
    """Parse one request; ``None`` on clean EOF.  Returns
    ``(method, path, params, keep_alive)``."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ServeError(f"malformed request line {request_line!r}")
    method, target, version = parts
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    keep_alive = headers.get(
        "connection", "keep-alive" if version == "HTTP/1.1" else "close"
    ).lower() != "close"
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServeError(f"request body of {length} bytes exceeds cap")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    params = _coerce_query_params(parse_qsl(split.query))
    if body:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(f"request body is not JSON: {error}") from None
        if not isinstance(parsed, dict):
            raise ServeError("request body must be a JSON object")
        params.update(parsed)
    return method, split.path, params, keep_alive


async def handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: serve requests until close/EOF."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ServeError, ValueError, asyncio.IncompleteReadError):
                writer.write(_response_bytes(
                    400, {"error": "malformed request"}, False
                ))
                break
            if request is None:
                break
            method, path, params, keep_alive = request
            status, payload = await route_request(app, method, path, params)
            writer.write(_response_bytes(status, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def route_request(
    app: ServeApp, method: str, path: str, params: dict
) -> Tuple[int, dict]:
    """Dispatch one parsed request; returns ``(status, payload)``."""
    segments = [part for part in path.split("/") if part]
    try:
        if path == "/healthz":
            return 200, {"ok": True, "corpora": app._registry.names()}
        if path == "/stats":
            return 200, app.stats.snapshot()
        if path == "/corpora" and method == "GET":
            return 200, {"corpora": app.corpora()}
        if len(segments) == 3 and segments[0] == "corpora":
            if method not in ("GET", "POST"):
                return 405, {"error": f"method {method} not allowed"}
            _, name, op = segments
            result = await app.request(name, op, params)
            return 200, {"corpus": name, "op": op, "result": result}
        return 404, {"error": f"no route for {path!r}"}
    except ServeError as error:
        app.stats.errors += 1
        message = str(error)
        status = 404 if "unknown corpus" in message else 400
        return status, {"error": message}
    except Exception as error:  # noqa: BLE001 - fault barrier
        app.stats.errors += 1
        return 500, {"error": f"{type(error).__name__}: {error}"}


async def start_http_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the HTTP adapter; ``port=0`` picks an ephemeral port."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(app, reader, writer),
        host, port,
    )


async def serve_forever(
    app: ServeApp, host: str, port: int, ready=None
) -> None:
    """Run the HTTP front-end until cancelled (the CLI entry)."""
    server = await start_http_server(app, host, port)
    address = server.sockets[0].getsockname()
    print(
        f"repro serve: {len(app.specs)} corpora on "
        f"http://{address[0]}:{address[1]} "
        f"(workers={app.workers or 'inline'}, "
        f"cache={app.cache_dir or 'memory'})"
    )
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()
