"""The asyncio front-end: many corpora, many clients, one cache.

:class:`ServeApp` is the transport-independent request layer — tests
drive it directly, the HTTP adapter below wraps it for ``repro serve``.
Three mechanisms turn the single-corpus Workspace library into a
service:

* **Process-pool sharding.**  Every operation is CPU-bound numpy work
  (:mod:`repro.serve.worker`); the event loop never runs it.  With
  ``workers > 0`` requests fan out over a ``ProcessPoolExecutor``
  whose workers hold process-local workspace registries over the
  shared npz directory; ``workers == 0`` runs the same code on a
  thread (small deployments, tests).
* **Single-flight coalescing.**  Concurrent requests for the same
  ``(corpus, op, params)`` key collapse into one in-flight build whose
  result every waiter shares — a cold-cache stampede performs each
  expensive build exactly once (the per-artifact single-writer rule).
* **Read-through warm path.**  Workers consult their in-memory object
  tier, then the npz tier, then compute; every response carries which
  stages were actually rebuilt, and :class:`ServeStats` aggregates
  them into the artifact hit rate the load benchmark gates.

Observability (:mod:`repro.obs`) threads through the whole path:

* every request gets an id (client-supplied ``X-Request-Id`` or
  generated) echoed back in the response and stamped on access-log
  lines and span trees;
* with telemetry on (the default; ``--no-telemetry`` opts out) the
  front-end traces accept → dispatch, workers trace their compute and
  ship the spans home to be grafted into one merged tree, and every
  layer records into a :class:`~repro.obs.metrics.MetricsRegistry` —
  pool workers ship cumulative snapshots with each response, keyed by
  pid, and ``GET /metrics`` renders the fleet-wide aggregate as
  Prometheus text;
* ``--max-pending N`` adds admission control: requests beyond N
  pending are shed with ``503`` + ``Retry-After`` instead of growing
  the executor queue without bound.

Endpoints (versioned under ``/v1``; the unversioned spellings keep
working but answer with a ``Deprecation`` header and are counted in
``ServeStats.legacy_requests`` so operators can see when it is safe to
drop them)::

    GET  /v1/healthz              liveness: ping round-trip through the
                                  worker pool (503 when it times out)
    GET  /v1/stats                traffic counters + latency quantiles
    GET  /v1/metrics              Prometheus text exposition
    GET  /v1/corpora
    POST /v1/corpora/<name>/<op>  op in {params, labels, fit, sweep,
                                         quality}; JSON params body
    GET  /v1/query                cross-corpus analytics off the sqlite
                                  artifact catalog (?query=cells&
                                  min_clusters=3&...); /v1-only — no
                                  legacy spelling ever existed
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import OverloadedError, ServeError
from repro.obs import (
    AccessLog,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    activate_trace,
    aggregate_snapshots,
    current_trace,
    get_logger,
    histogram_quantile,
    new_request_id,
    render_prometheus,
    span,
)
from repro.serve import worker
from repro.serve.registry import CorpusSpec, WorkspaceRegistry

#: Hard cap on request bodies (a params JSON is tiny; anything bigger
#: is a client error, not a workload).
MAX_BODY_BYTES = 1 << 20

#: Seconds the /healthz probe waits for a pool ping round-trip.
HEALTH_TIMEOUT = 2.0

_LOG = get_logger("serve")


@dataclass
class ServeStats:
    """Aggregated traffic counters of one server instance."""

    requests: int = 0
    #: Requests served without recomputing any pipeline stage (memory
    #: or npz artifacts all the way down) — includes coalesced waiters,
    #: which by construction triggered no build of their own.
    artifact_hits: int = 0
    #: Requests that joined another request's in-flight build.
    coalesced: int = 0
    errors: int = 0
    #: Requests refused by ``--max-pending`` admission control.
    sheds: int = 0
    #: Requests that arrived on a deprecated unversioned path (the
    #: pre-``/v1`` spellings); drop the legacy routes once this stays
    #: at zero across a deployment window.
    legacy_requests: int = 0
    #: Stage -> total rebuild count across every worker process.
    builds: Dict[str, int] = field(default_factory=dict)

    def hit_rate(self) -> float:
        return self.artifact_hits / self.requests if self.requests else 0.0

    def build_total(self) -> int:
        return sum(self.builds.values())

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "artifact_hits": self.artifact_hits,
            "hit_rate": self.hit_rate(),
            "coalesced": self.coalesced,
            "errors": self.errors,
            "sheds": self.sheds,
            "legacy_requests": self.legacy_requests,
            "builds": dict(self.builds),
        }


class ServeApp:
    """Transport-independent request layer over a corpus registry."""

    def __init__(
        self,
        specs: Sequence[CorpusSpec],
        cache_dir: Optional[str] = None,
        workers: int = 0,
        max_workspaces: int = 8,
        max_disk_bytes: Optional[int] = None,
        telemetry: bool = True,
        max_pending: Optional[int] = None,
        access_log: Optional[str] = None,
        kernel_backend: str = "auto",
    ):
        if workers < 0:
            raise ServeError("workers must be >= 0")
        if max_pending is not None and max_pending < 1:
            raise ServeError("max_pending must be >= 1")
        from repro import kernels

        if kernel_backend not in kernels.KERNEL_BACKENDS:
            raise ServeError(
                f"unknown kernel backend {kernel_backend!r}; expected one "
                f"of {kernels.KERNEL_BACKENDS}"
            )
        self.kernel_backend = kernel_backend
        self.specs = list(specs)
        self.cache_dir = cache_dir
        self.workers = workers
        self.max_workspaces = max_workspaces
        self.max_disk_bytes = max_disk_bytes
        self.telemetry = bool(telemetry)
        self.max_pending = max_pending
        self.access_log = AccessLog(access_log) if access_log else None
        self.stats = ServeStats()
        #: Admitted requests currently somewhere between accept and
        #: response (the admission-control watermark).  Only mutated on
        #: the event loop.
        self._pending = 0
        # The front-end's own registry serves only metadata (names,
        # fingerprints); computation happens in the executor — so it
        # deliberately reports no metrics (no double counting).
        self._registry = WorkspaceRegistry(
            specs,
            cache_dir=cache_dir,
            max_workspaces=max_workspaces,
            max_disk_bytes=max_disk_bytes,
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Lazily-opened sqlite catalog over the shared cache_dir — the
        #: ``/v1/query`` analytics surface.  The front-end only ever
        #: reads it (WAL keeps readers live under worker writes).
        self._catalog = None
        #: pid -> latest cumulative metrics snapshot shipped by that
        #: pool worker.  Replacing (not adding) per pid keeps the sum
        #: correct: each snapshot is cumulative over the worker's life.
        self._worker_metrics: Dict[int, dict] = {}
        if workers > 0:
            # Pool mode: the server holds its own registry for the
            # request-path metrics; workers record cache/build metrics
            # process-locally and ship snapshots home per response.
            self.metrics = MetricsRegistry(enabled=self.telemetry)
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=worker.initialize,
                initargs=(
                    self.specs, cache_dir, max_workspaces, max_disk_bytes,
                    self.telemetry, True, kernel_backend,
                ),
            )
            # Force the pool to fork NOW, before any client connection
            # exists: the executor otherwise spawns its workers on the
            # first submit, mid-request, and (with the default fork
            # start method) each long-lived worker would inherit a
            # duplicate of the open client socket — so the client's
            # wait-for-EOF after ``Connection: close`` never returns.
            self._executor.submit(worker.ping).result()
        else:
            # Inline mode: the server process is its own (threaded)
            # worker, so server and worker share one registry object
            # and nothing needs shipping.
            worker.initialize(
                self.specs, cache_dir, max_workspaces, max_disk_bytes,
                telemetry=self.telemetry, ship_metrics=False,
                kernel_backend=kernel_backend,
            )
            self.metrics = worker.metrics_registry()
        self._m_in_flight = self.metrics.gauge(
            "repro_requests_in_flight",
            help="Admitted operation requests currently being served.",
        )
        self._m_sheds = self.metrics.counter(
            "repro_requests_shed_total",
            help="Requests refused by --max-pending admission control.",
        )
        self._m_coalesced = self.metrics.counter(
            "repro_coalesced_total",
            help="Requests that joined another request's in-flight build.",
        )
        self._m_queue_seconds = self.metrics.histogram(
            "repro_request_queue_seconds",
            help="Seconds between executor dispatch and compute start "
                 "(executor round-trip minus worker compute).",
        )
        #: (op, status) -> (counter, histogram); saves the registry's
        #: keyed lookup on every finished request.
        self._request_instruments: Dict[Tuple[str, int], tuple] = {}

    # -- metadata ----------------------------------------------------------
    def corpora(self) -> list:
        return [
            {
                "name": name,
                "fingerprint": self._registry.fingerprint(name),
            }
            for name in self._registry.names()
        ]

    def catalog_query(self, params: dict) -> dict:
        """``GET /v1/query``: run one canned catalog query (synchronous
        sqlite work — the router pushes it onto the default thread
        executor).  Raw SQL stays a Python/CLI-local affordance; over
        HTTP only the canned queries are reachable."""
        from repro.api.catalog import Catalog
        from repro.exceptions import CatalogError

        if self.cache_dir is None:
            raise ServeError(
                "this server is memory-only (no --workspace directory); "
                "there is no catalog to query"
            )
        if self._catalog is None:
            try:
                self._catalog = Catalog(self.cache_dir, metrics=self.metrics)
            except CatalogError as error:
                raise ServeError(f"catalog unavailable: {error}") from error
        filters = dict(params)
        name = filters.pop("query", "cells")
        # Query-string values arrive as text; sqlite orders TEXT after
        # every numeric, so comparisons must bind real numbers.
        try:
            for key in ("min_clusters", "limit"):
                if key in filters:
                    filters[key] = int(filters[key])
            for key in ("max_noise", "eps", "min_lns"):
                if key in filters:
                    filters[key] = float(filters[key])
        except (TypeError, ValueError) as error:
            raise ServeError(f"bad query parameter: {error}") from error
        try:
            rows = self._catalog.query(name, **filters)
        except CatalogError as error:
            raise ServeError(str(error)) from error
        return {"query": name, "n_rows": len(rows), "rows": rows}

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._catalog is not None:
            self._catalog.close()
            self._catalog = None
        if self.access_log is not None:
            self.access_log.close()

    # -- telemetry surfaces ------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The fleet-wide metrics view: the server's own registry plus
        the latest cumulative snapshot from every pool worker."""
        own = self.metrics.snapshot() if self.metrics is not None else {}
        return aggregate_snapshots([own] + list(self._worker_metrics.values()))

    def stats_payload(self) -> dict:
        """``/stats``: traffic counters, and — with telemetry on —
        latency quantiles per ``*_seconds`` histogram series."""
        payload = self.stats.snapshot()
        payload["pending"] = self._pending
        payload["workers"] = self.workers
        if self.telemetry:
            payload["latency"] = self._latency_quantiles()
        return payload

    def _latency_quantiles(self) -> dict:
        out: Dict[str, dict] = {}
        for key, value in self.metrics_snapshot().get("series", {}).items():
            if not isinstance(value, dict):
                continue
            name, items = json.loads(key)
            if not name.endswith("_seconds"):
                continue
            count = sum(value["counts"])
            if not count:
                continue
            label = ",".join(f"{k}={v}" for k, v in items) or "all"
            out.setdefault(name, {})[label] = {
                "count": count,
                "p50": histogram_quantile(value, 0.50),
                "p90": histogram_quantile(value, 0.90),
                "p99": histogram_quantile(value, 0.99),
            }
        return out

    def observe_request(self, op: str, status: int, seconds: float) -> None:
        """Record one finished operation request (the HTTP router calls
        this with the final status, errors included)."""
        if not self.telemetry:
            return
        instruments = self._request_instruments.get((op, status))
        if instruments is None:
            instruments = (
                self.metrics.counter(
                    "repro_requests_total",
                    help="Operation requests by op and final HTTP status.",
                    op=op, status=str(status),
                ),
                self.metrics.histogram(
                    "repro_request_seconds",
                    help="End-to-end seconds per operation request "
                         "on the server.",
                    op=op,
                ),
            )
            self._request_instruments[(op, status)] = instruments
        counter, histogram = instruments
        counter.inc()
        histogram.observe(seconds)

    async def health(self, timeout: float = HEALTH_TIMEOUT) -> Tuple[bool, dict]:
        """Real liveness: a ping round-trip through the worker pool
        (inline mode: through the default thread executor).  A pool
        wedged behind long computes fails the probe — that is the
        point; ``/healthz`` answers \"can this server serve\"."""
        loop = asyncio.get_running_loop()
        try:
            await asyncio.wait_for(
                loop.run_in_executor(self._executor, worker.ping), timeout
            )
            ok = True
        except Exception:  # noqa: BLE001 - any failure means unhealthy
            ok = False
        return ok, {
            "ok": ok,
            "workers": self.workers,
            "corpora": len(self.specs),
            "pending": self._pending,
        }

    # -- the request path --------------------------------------------------
    @staticmethod
    def request_key(name: str, op: str, params: dict) -> str:
        """Canonical identity of a request — the coalescing key."""
        return json.dumps([name, op, params], sort_keys=True)

    async def request(
        self,
        name: str,
        op: str,
        params: dict,
        request_id: Optional[str] = None,
        info: Optional[dict] = None,
    ) -> dict:
        """Serve one operation; concurrent identical requests coalesce
        into a single build whose result all of them share.  *info*,
        when given, is filled with per-request telemetry for the access
        log (coalesced flag, build deltas, queue/compute split)."""
        if name not in self._registry.specs:
            raise ServeError(
                f"unknown corpus {name!r}; serving {self._registry.names()}"
            )
        if op not in worker.OPERATIONS:
            raise ServeError(
                f"unknown operation {op!r}; one of "
                f"{sorted(worker.OPERATIONS)}"
            )
        key = self.request_key(name, op, params)
        self.stats.requests += 1
        if self.max_pending is not None and self._pending >= self.max_pending:
            self.stats.sheds += 1
            self._m_sheds.inc()
            _LOG.warning(
                "request shed", corpus=name, op=op,
                pending=self._pending, max_pending=self.max_pending,
            )
            raise OverloadedError(
                f"{self._pending} requests pending at "
                f"max-pending={self.max_pending}; retry shortly"
            )
        self._pending += 1
        self._m_in_flight.inc()
        try:
            existing = self._inflight.get(key)
            if existing is not None:
                # Join the in-flight build: by construction this request
                # triggers no redundant work, which is what the hit-rate
                # metric measures.
                self.stats.coalesced += 1
                self._m_coalesced.inc()
                if info is not None:
                    info["coalesced"] = True
                payload = await asyncio.shield(existing)
                if "error" in payload:
                    raise ServeError(payload["error"])
                self.stats.artifact_hits += 1
                return payload["result"]
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            self._inflight[key] = future
            dispatched = time.perf_counter()
            # Worker-side span trees are only worth building when a
            # trace is live to graft them into (the access-log path,
            # or a caller running its own trace).
            want_spans = current_trace() is not None
            try:
                with span("dispatch", op=op, corpus=name):
                    payload = await loop.run_in_executor(
                        self._executor, worker.compute_safe,
                        name, op, params, request_id, want_spans,
                    )
                    # Graft while the dispatch span is still open so
                    # the worker's tree lands underneath it.
                    self._absorb_telemetry(
                        payload, time.perf_counter() - dispatched, info
                    )
                future.set_result(payload)
            except BaseException as error:
                future.set_exception(error)
                # A waiter may never await it; don't warn on teardown.
                future.exception()
                raise
            finally:
                self._inflight.pop(key, None)
            for stage, count in payload.get("builds", {}).items():
                self.stats.builds[stage] = (
                    self.stats.builds.get(stage, 0) + count
                )
            if "error" in payload:
                raise ServeError(payload["error"])
            if not payload.get("builds"):
                self.stats.artifact_hits += 1
            if info is not None:
                info["builds"] = dict(payload.get("builds", {}))
            return payload["result"]
        finally:
            self._pending -= 1
            self._m_in_flight.dec()

    def _absorb_telemetry(
        self, payload: dict, round_trip: float, info: Optional[dict]
    ) -> None:
        """Fold a worker response's telemetry into the server's view:
        queue-wait metric, per-pid snapshot replacement, and grafting
        the worker's span tree into the ambient request trace."""
        telemetry = payload.get("telemetry") if isinstance(payload, dict) else None
        if not telemetry or not self.telemetry:
            return
        compute_seconds = telemetry.get("compute_seconds")
        if compute_seconds is not None:
            queue_seconds = max(0.0, round_trip - compute_seconds)
            self._m_queue_seconds.observe(queue_seconds)
            if info is not None:
                info["queue_ms"] = round(queue_seconds * 1000.0, 3)
                info["compute_ms"] = round(compute_seconds * 1000.0, 3)
        shipped = telemetry.get("metrics")
        if shipped is not None:
            self._worker_metrics[telemetry["pid"]] = shipped
        trace = current_trace()
        spans_ = telemetry.get("spans")
        if trace is not None and spans_:
            # Put the worker's spans on this trace's clock: its trace
            # started compute_seconds before now.
            offset_ms = max(
                0.0,
                (trace.elapsed() - (compute_seconds or 0.0)) * 1000.0,
            )
            trace.graft(spans_, offset_ms=offset_ms)


# -- HTTP adapter -----------------------------------------------------------

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _response_bytes(
    status: int,
    payload,
    keep_alive: bool,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one response.  ``dict`` payloads go out as JSON;
    ``str`` payloads as ``text/plain`` (the Prometheus exposition)."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = PROMETHEUS_CONTENT_TYPE
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _coerce_query_params(pairs) -> dict:
    """Query-string params: floats where possible, comma lists for the
    grid parameters (``eps_values=1,2,3``)."""
    params: dict = {}
    for key, value in pairs:
        if key in ("eps_values", "min_lns_values"):
            params[key] = [float(v) for v in value.split(",") if v.strip()]
        else:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, dict, bool, Dict[str, str]]]:
    """Parse one request; ``None`` on clean EOF.  Returns
    ``(method, path, params, keep_alive, headers)``."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ServeError(f"malformed request line {request_line!r}")
    method, target, version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    keep_alive = headers.get(
        "connection", "keep-alive" if version == "HTTP/1.1" else "close"
    ).lower() != "close"
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServeError(f"request body of {length} bytes exceeds cap")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    params = _coerce_query_params(parse_qsl(split.query))
    if body:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(f"request body is not JSON: {error}") from None
        if not isinstance(parsed, dict):
            raise ServeError("request body must be a JSON object")
        params.update(parsed)
    return method, split.path, params, keep_alive, headers


def _access_record(
    method: str, path: str, status: int, request_id: str,
    started_wall: float, duration_ms: float, info: dict,
    spans_out: Optional[list],
) -> dict:
    """One access-log line (see :mod:`repro.obs.access_log` for the
    schema)."""
    record = {
        "ts": round(started_wall, 6),
        "request_id": request_id,
        "method": method,
        "path": path,
        "status": status,
        "duration_ms": round(duration_ms, 3),
        "coalesced": bool(info.get("coalesced")),
        "builds": info.get("builds", {}),
    }
    segments = [part for part in path.split("/") if part]
    if segments and segments[0] == "v1":
        segments = segments[1:]
    if len(segments) == 3 and segments[0] == "corpora":
        record["corpus"] = segments[1]
        record["op"] = segments[2]
    for extra in ("queue_ms", "compute_ms"):
        if extra in info:
            record[extra] = info[extra]
    if spans_out:
        record["spans"] = spans_out
    return record


async def handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: serve requests until close/EOF."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ServeError, ValueError, asyncio.IncompleteReadError):
                writer.write(_response_bytes(
                    400, {"error": "malformed request"}, False
                ))
                break
            if request is None:
                break
            method, path, params, keep_alive, req_headers = request
            started_wall = time.time()
            started = time.perf_counter()
            request_id = req_headers.get("x-request-id") or new_request_id()
            info: dict = {}
            spans_out: Optional[list] = None
            if app.telemetry and app.access_log is not None:
                # Tracing exists to be read: the span trees land on
                # access-log lines, so the whole machinery (activate,
                # record, worker graft, serialise) is only paid when a
                # log is configured.  Metrics stay on regardless.
                with activate_trace(request_id=request_id) as trace:
                    with span(f"http:{method.lower()}", path=path):
                        status, payload, extra = await route_request(
                            app, method, path, params,
                            request_id=request_id, info=info,
                        )
                spans_out = trace.span_dicts()
            else:
                status, payload, extra = await route_request(
                    app, method, path, params,
                    request_id=request_id, info=info,
                )
            response_headers = {"X-Request-Id": request_id}
            response_headers.update(extra)
            writer.write(_response_bytes(
                status, payload, keep_alive, response_headers
            ))
            await writer.drain()
            if app.access_log is not None:
                app.access_log.write(_access_record(
                    method, path, status, request_id, started_wall,
                    (time.perf_counter() - started) * 1000.0, info,
                    spans_out,
                ))
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


#: URL prefix of the current API version.
API_PREFIX = "/v1"


async def route_request(
    app: ServeApp,
    method: str,
    path: str,
    params: dict,
    request_id: Optional[str] = None,
    info: Optional[dict] = None,
) -> Tuple[int, object, Dict[str, str]]:
    """Dispatch one parsed request; returns
    ``(status, payload, headers)``.  The payload is a JSON-safe dict,
    except ``/metrics`` which returns the Prometheus text body.

    Routes live under :data:`API_PREFIX`; an unversioned spelling of a
    pre-``/v1`` route still answers, with a ``Deprecation`` header and
    a ``Link`` to its successor, and bumps
    ``ServeStats.legacy_requests``.  Unmatched paths 404 either way."""
    versioned = path == API_PREFIX or path.startswith(API_PREFIX + "/")
    route_path = path[len(API_PREFIX):] or "/" if versioned else path
    status, payload, headers, matched = await _dispatch(
        app, method, route_path, params,
        request_id=request_id, info=info, versioned=versioned,
    )
    if matched and not versioned:
        app.stats.legacy_requests += 1
        headers.setdefault("Deprecation", "true")
        headers.setdefault(
            "Link", f'<{API_PREFIX}{route_path}>; rel="successor-version"'
        )
    return status, payload, headers


async def _dispatch(
    app: ServeApp,
    method: str,
    path: str,
    params: dict,
    request_id: Optional[str],
    info: Optional[dict],
    versioned: bool,
) -> Tuple[int, object, Dict[str, str], bool]:
    """The version-independent router: *path* has the ``/v1`` prefix
    already stripped.  The fourth element says whether the path matched
    a known route (deprecation headers only decorate real routes)."""
    segments = [part for part in path.split("/") if part]
    headers: Dict[str, str] = {}
    try:
        if path == "/healthz":
            ok, body = await app.health()
            return (200 if ok else 503), body, headers, True
        if path == "/stats":
            return 200, app.stats_payload(), headers, True
        if path == "/metrics":
            if not app.telemetry:
                return 404, {
                    "error": "telemetry is disabled on this server "
                             "(started with --no-telemetry)"
                }, headers, True
            return 200, render_prometheus(app.metrics_snapshot()), headers, True
        if path == "/query":
            # Born versioned: there is no legacy spelling to honour.
            if not versioned:
                return 404, {
                    "error": f"no route for {path!r}; the catalog "
                             f"query surface is {API_PREFIX}/query"
                }, headers, False
            if method != "GET":
                return 405, {
                    "error": f"method {method} not allowed"
                }, headers, True
            loop = asyncio.get_running_loop()
            body = await loop.run_in_executor(
                None, app.catalog_query, params
            )
            return 200, body, headers, True
        if path == "/corpora" and method == "GET":
            return 200, {"corpora": app.corpora()}, headers, True
        if len(segments) == 3 and segments[0] == "corpora":
            if method not in ("GET", "POST"):
                return 405, {
                    "error": f"method {method} not allowed"
                }, headers, True
            _, name, op = segments
            started = time.perf_counter()
            status = 500
            try:
                result = await app.request(
                    name, op, params, request_id=request_id, info=info
                )
                status = 200
                return status, {
                    "corpus": name, "op": op, "result": result
                }, headers, True
            except OverloadedError as error:
                # Sheds are counted by admission control, not as
                # errors — the client did nothing wrong.
                status = 503
                headers["Retry-After"] = "1"
                return status, {"error": str(error)}, headers, True
            except ServeError as error:
                app.stats.errors += 1
                message = str(error)
                status = 404 if "unknown corpus" in message else 400
                return status, {"error": message}, headers, True
            except Exception as error:  # noqa: BLE001 - fault barrier
                app.stats.errors += 1
                status = 500
                _LOG.error(
                    "request failed", corpus=name, op=op,
                    request_id=request_id, error=f"{type(error).__name__}",
                )
                return status, {
                    "error": f"{type(error).__name__}: {error}"
                }, headers, True
            finally:
                app.observe_request(
                    op, status, time.perf_counter() - started
                )
        return 404, {"error": f"no route for {path!r}"}, headers, False
    except ServeError as error:
        app.stats.errors += 1
        message = str(error)
        status = 404 if "unknown corpus" in message else 400
        return status, {"error": message}, headers, True
    except Exception as error:  # noqa: BLE001 - fault barrier
        app.stats.errors += 1
        return 500, {
            "error": f"{type(error).__name__}: {error}"
        }, headers, True


async def start_http_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the HTTP adapter; ``port=0`` picks an ephemeral port."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(app, reader, writer),
        host, port,
    )


async def serve_forever(
    app: ServeApp, host: str, port: int, ready=None
) -> None:
    """Run the HTTP front-end until cancelled (the CLI entry)."""
    server = await start_http_server(app, host, port)
    address = server.sockets[0].getsockname()
    print(
        f"repro serve: {len(app.specs)} corpora on "
        f"http://{address[0]}:{address[1]} "
        f"(workers={app.workers or 'inline'}, "
        f"cache={app.cache_dir or 'memory'}, "
        f"telemetry={'on' if app.telemetry else 'off'})"
    )
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()
