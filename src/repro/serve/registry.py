"""Per-corpus Workspace management for the serving layer.

A :class:`WorkspaceRegistry` maps corpus *names* to open
:class:`~repro.api.workspace.Workspace` sessions over one shared cache
directory.  Corpora are declared up front as :class:`CorpusSpec`
records (a CSV path, or in-process trajectories for tests), opened
lazily on first request, keyed by their content fingerprint
(:func:`repro.api.fingerprint.corpus_fingerprint`), and evicted LRU
once more than ``max_workspaces`` are open — evicting a workspace only
drops its in-memory object tier; the npz artifacts stay on disk, so a
re-opened corpus starts warm (read-through).

The registry is thread-safe: the serving front-end calls it from
executor threads, and each pool worker process builds its own instance
from the same picklable specs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.workspace import Workspace
from repro.core.config import TraclusConfig
from repro.exceptions import ServeError
from repro.model.trajectory import Trajectory


@dataclass(frozen=True)
class CorpusSpec:
    """One servable corpus: where its trajectories come from and the
    point-independent config its workspace runs with.  Exactly one of
    ``csv_path`` / ``trajectories`` must be set; CSV specs are the
    picklable flavor pool workers are initialised with."""

    name: str
    csv_path: Optional[str] = None
    trajectories: Optional[Tuple[Trajectory, ...]] = None
    config: TraclusConfig = field(default_factory=TraclusConfig)

    def __post_init__(self):
        if (self.csv_path is None) == (self.trajectories is None):
            raise ServeError(
                f"corpus {self.name!r}: set exactly one of csv_path or "
                f"trajectories"
            )

    def load(self) -> Sequence[Trajectory]:
        if self.trajectories is not None:
            return list(self.trajectories)
        from repro.io.csvio import read_trajectories_csv

        return read_trajectories_csv(self.csv_path)


@dataclass
class RegistryStats:
    """Counters of one registry instance (not persisted)."""

    opens: int = 0
    hits: int = 0
    evictions: int = 0


class WorkspaceRegistry:
    """``name -> Workspace`` with LRU eviction over one cache dir."""

    def __init__(
        self,
        specs: Sequence[CorpusSpec],
        cache_dir: Optional[str] = None,
        max_workspaces: int = 8,
        max_disk_bytes: Optional[int] = None,
        metrics=None,
    ):
        if max_workspaces < 1:
            raise ServeError("max_workspaces must be >= 1")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate corpus names in {names}")
        self.specs: Dict[str, CorpusSpec] = {s.name: s for s in specs}
        self.cache_dir = cache_dir
        self.max_workspaces = max_workspaces
        self.max_disk_bytes = max_disk_bytes
        #: Shared by every workspace this registry opens (telemetry).
        self.metrics = metrics
        # Insertion order == recency order (oldest first), like the
        # artifact store's object tier.
        self._open: Dict[str, Workspace] = {}
        self._fingerprints: Dict[str, str] = {}
        self._lock = threading.RLock()
        self.stats = RegistryStats()

    def names(self) -> List[str]:
        return sorted(self.specs)

    def get(self, name: str) -> Workspace:
        """The corpus's workspace — opened (and LRU-registered) on
        first use, served from the open set afterwards."""
        with self._lock:
            workspace = self._open.pop(name, None)
            if workspace is not None:
                self._open[name] = workspace  # refresh recency
                self.stats.hits += 1
                return workspace
            spec = self.specs.get(name)
            if spec is None:
                raise ServeError(
                    f"unknown corpus {name!r}; serving "
                    f"{self.names() or 'none'}"
                )
        # Load outside the lock: opening a big corpus must not block
        # lookups of already-open ones.
        workspace = Workspace(
            spec.load(),
            spec.config,
            cache_dir=self.cache_dir,
            max_disk_bytes=self.max_disk_bytes,
            metrics=self.metrics,
        )
        # The workspace registered its fingerprint in the catalog on
        # open; the registry adds the only thing it alone knows — the
        # human-facing corpus name ``/v1/query`` filters accept.
        workspace.store._catalog_call(
            "register_corpus", workspace.corpus_key, spec.name, None, None
        )
        with self._lock:
            raced = self._open.pop(name, None)
            if raced is not None:
                # Another thread opened it while we loaded; keep theirs.
                self._open[name] = raced
                self.stats.hits += 1
                return raced
            while len(self._open) >= self.max_workspaces:
                evicted_name = next(iter(self._open))
                del self._open[evicted_name]
                self.stats.evictions += 1
            self._open[name] = workspace
            self._fingerprints[name] = workspace.corpus_key
            self.stats.opens += 1
        return workspace

    def fingerprint(self, name: str) -> str:
        """The corpus's content fingerprint (opens it if needed)."""
        with self._lock:
            cached = self._fingerprints.get(name)
        if cached is not None:
            return cached
        return self.get(name).corpus_key

    def open_names(self) -> List[str]:
        """Currently-open corpora, coldest first (inspection only)."""
        with self._lock:
            return list(self._open)

    def __repr__(self) -> str:
        return (
            f"WorkspaceRegistry({len(self.specs)} corpora, "
            f"{len(self._open)} open, cache={self.cache_dir!r})"
        )
