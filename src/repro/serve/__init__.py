"""Multi-corpus serving layer: ``repro serve``.

One asyncio front-end multiplexes many trajectory corpora over one
shared artifact store — async request handling with the CPU-bound
fit/sweep/labels/quality work sharded to a process pool, per-corpus
workspaces opened and LRU-evicted by a
:class:`~repro.serve.registry.WorkspaceRegistry`, byte-budgeted LRU
eviction of the shared npz tier, and single-flight coalescing so
concurrent builds of the same artifact fingerprint run once.

See the README's "Serving many corpora" section for endpoints, the
eviction knobs, and when to bypass the server for the library.
"""

from repro.serve.registry import (  # noqa: F401
    CorpusSpec,
    RegistryStats,
    WorkspaceRegistry,
)
from repro.serve.server import (  # noqa: F401
    ServeApp,
    ServeStats,
    serve_forever,
    start_http_server,
)
from repro.serve.worker import OPERATIONS  # noqa: F401
