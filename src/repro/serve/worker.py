"""Request execution: the CPU-bound half of the serving layer.

Every operation the front-end serves is a pure function
``(workspace, params) -> JSON-safe dict`` defined here, so the same
code runs inline (``--workers 0``) or sharded over a process pool.
Pool workers are initialised once with the picklable corpus specs and
build a process-local :class:`~repro.serve.registry.WorkspaceRegistry`
over the shared cache directory — the npz tier is the read-through
warm path between processes, the per-process registries are the hot
object tier.  Each worker's artifact stores also write through to the
shared sqlite catalog (:mod:`repro.api.catalog`): WAL mode makes the
many-writer traffic safe, and the front-end's read-only ``/v1/query``
connection sees every save the fleet commits.

Each call also reports the workspace's *build deltas* (which pipeline
stages actually recomputed), so the front-end can aggregate artifact
hit rates and assert zero redundant graph builds across the whole
worker fleet.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.api.workspace import Workspace
from repro.exceptions import ReproError, ServeError
from repro.obs import MetricsRegistry, activate_trace, span
from repro.serve.registry import CorpusSpec, WorkspaceRegistry

#: Process-local registry of a pool worker (set by :func:`initialize`).
_REGISTRY: Optional[WorkspaceRegistry] = None

#: Process-local metrics registry every workspace this process opens
#: reports into.  Inline mode (``--workers 0``) initialises in the
#: server process, so the front-end reads this registry directly; pool
#: workers ship cumulative snapshots home with each response instead
#: (see :func:`compute`).
_METRICS: Optional[MetricsRegistry] = None

#: Whether :func:`compute` attaches a metrics snapshot to each
#: response (pool mode only — inline mode shares the registry object).
_SHIP_METRICS = False


def initialize(
    specs: Sequence[CorpusSpec],
    cache_dir: Optional[str],
    max_workspaces: int,
    max_disk_bytes: Optional[int],
    telemetry: bool = False,
    ship_metrics: bool = False,
    kernel_backend: str = "auto",
) -> None:
    """Build this process's registry (the pool initializer; the inline
    path calls it once in the server process).

    *kernel_backend* installs the hot-kernel dispatch default for this
    process (:mod:`repro.kernels`) and attaches the metrics registry so
    ``repro_kernel_backend`` / ``repro_kernel_seconds`` appear on
    ``/metrics``.  An explicitly requested backend that this host
    cannot provide degrades to numpy (visible on the gauge) rather than
    killing the pool."""
    from repro import kernels

    global _REGISTRY, _METRICS, _SHIP_METRICS
    _METRICS = MetricsRegistry(enabled=telemetry)
    _SHIP_METRICS = bool(ship_metrics and telemetry)
    kernels.set_default_backend(kernel_backend)
    kernels.set_metrics_registry(_METRICS if telemetry else None)
    _REGISTRY = WorkspaceRegistry(
        specs,
        cache_dir=cache_dir,
        max_workspaces=max_workspaces,
        max_disk_bytes=max_disk_bytes,
        metrics=_METRICS if telemetry else None,
    )


def ping() -> bool:
    """No-op the front-end submits at startup to force the pool to
    spawn its worker processes before any client socket exists — and
    the liveness probe ``/healthz`` round-trips through the pool."""
    return True


def metrics_registry() -> Optional[MetricsRegistry]:
    """This process's registry (the inline front-end reads it)."""
    return _METRICS


def _labels_checksum(labels: np.ndarray) -> str:
    """Content digest of a label array — clients assert repeat requests
    (any worker, any process) serve bitwise-identical clusterings."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(labels.dtype).encode())
    digest.update(str(labels.shape).encode())
    digest.update(np.ascontiguousarray(labels).tobytes())
    return digest.hexdigest()


def _float(params: dict, name: str) -> float:
    if name not in params:
        raise ServeError(f"missing required parameter {name!r}")
    try:
        return float(params[name])
    except (TypeError, ValueError):
        raise ServeError(
            f"parameter {name!r} must be a number, got {params[name]!r}"
        ) from None


def _float_list(params: dict, name: str) -> list:
    values = params.get(name)
    if not isinstance(values, (list, tuple)) or not values:
        raise ServeError(f"parameter {name!r} must be a non-empty list")
    try:
        return [float(v) for v in values]
    except (TypeError, ValueError):
        raise ServeError(f"parameter {name!r} must hold numbers") from None


def _label_summary(labels: np.ndarray) -> dict:
    n_clusters = int(labels.max()) + 1 if labels.size else 0
    return {
        "n_segments": int(labels.size),
        "n_clusters": max(n_clusters, 0),
        "n_noise": int(np.sum(labels < 0)),
        "checksum": _labels_checksum(labels),
    }


def _op_params(workspace: Workspace, params: dict) -> dict:
    eps_values = (
        _float_list(params, "eps_values")
        if params.get("eps_values") is not None
        else None
    )
    estimate = workspace.recommend_parameters(eps_values)
    return {
        "eps": float(estimate.eps),
        "entropy": float(estimate.entropy),
        "avg_neighborhood_size": float(estimate.avg_neighborhood_size),
        "min_lns_low": float(estimate.min_lns_low),
        "min_lns_high": float(estimate.min_lns_high),
    }


def _op_labels(workspace: Workspace, params: dict) -> dict:
    labels = workspace.labels(
        _float(params, "eps"), _float(params, "min_lns")
    )
    result = _label_summary(labels)
    if params.get("return_labels"):
        result["labels"] = [int(label) for label in labels]
    return result


def _op_fit(workspace: Workspace, params: dict) -> dict:
    eps = params.get("eps")
    min_lns = params.get("min_lns")
    estimated = {}
    if eps is None or min_lns is None:
        estimate = workspace.recommend_parameters()
        if eps is None:
            eps = estimate.eps
        if min_lns is None:
            min_lns = estimate.avg_neighborhood_size + 2.0
        estimated = {"estimated_entropy": float(estimate.entropy)}
    eps = float(eps)
    min_lns = float(min_lns)
    labels = workspace.labels(eps, min_lns)
    clusters = workspace.clusters(eps, min_lns)
    result = _label_summary(labels)
    result.update(estimated)
    result.update({
        "eps": eps,
        "min_lns": min_lns,
        "cluster_sizes": [len(cluster) for cluster in clusters],
    })
    return result


def _op_sweep(workspace: Workspace, params: dict) -> dict:
    eps_values = _float_list(params, "eps_values")
    min_lns_values = _float_list(params, "min_lns_values")
    labels = workspace.labels_grid(eps_values, min_lns_values)
    entropies, avg_sizes = workspace.entropy_curve(eps_values)
    cells = []
    for i, eps in enumerate(eps_values):
        for j, min_lns in enumerate(min_lns_values):
            cell = labels[i, j]
            n_clusters = int(cell.max()) + 1 if cell.size else 0
            cells.append({
                "eps": eps,
                "min_lns": min_lns,
                "n_clusters": max(n_clusters, 0),
                "n_noise": int(np.sum(cell < 0)),
            })
    return {
        "grid": [len(eps_values), len(min_lns_values)],
        "n_segments": int(labels.shape[2]),
        "cells": cells,
        "entropies": [float(e) for e in entropies],
        "avg_neighborhood_sizes": [float(a) for a in avg_sizes],
        "checksum": _labels_checksum(labels),
    }


def _op_quality(workspace: Workspace, params: dict) -> dict:
    breakdown = workspace.quality(
        _float(params, "eps"), _float(params, "min_lns")
    )
    return {
        "total_sse": float(breakdown.total_sse),
        "noise_penalty": float(breakdown.noise_penalty),
        "qmeasure": float(breakdown.qmeasure),
    }


#: Operation name -> implementation; the HTTP router's whitelist.
OPERATIONS = {
    "params": _op_params,
    "labels": _op_labels,
    "fit": _op_fit,
    "sweep": _op_sweep,
    "quality": _op_quality,
}


def compute(
    name: str, op: str, params: dict, request_id: Optional[str] = None,
    want_spans: bool = False,
) -> dict:
    """Run one operation against this process's registry.

    Returns ``{"result": ..., "builds": {stage: count}}`` where
    ``builds`` holds only the stages this call actually recomputed —
    empty on a fully warm (artifact-served) request.

    With telemetry on the payload also carries ``telemetry``: this
    process's pid, the compute wall time, and — pool mode — a
    cumulative metrics snapshot the front-end merges into the
    fleet-wide scrape.  With ``want_spans`` (the front-end sets it only
    when an access log consumes the trees) the worker additionally runs
    its own trace around the compute (contexts never cross the
    process/executor-thread boundary) and ships its span tree for the
    front-end to graft into the request's.
    """
    if _REGISTRY is None:
        raise ServeError("worker not initialised (no registry)")
    operation = OPERATIONS.get(op)
    if operation is None:
        raise ServeError(
            f"unknown operation {op!r}; one of {sorted(OPERATIONS)}"
        )
    workspace = _REGISTRY.get(name)
    before = workspace.stats.builds_snapshot()
    telemetry = _METRICS is not None and _METRICS.enabled
    if not telemetry:
        result = operation(workspace, params)
        trace = None
        compute_seconds = None
    elif want_spans:
        started = time.perf_counter()
        with activate_trace(request_id=request_id) as trace:
            with span(f"op:{op}", corpus=name):
                result = operation(workspace, params)
        compute_seconds = time.perf_counter() - started
    else:
        trace = None
        started = time.perf_counter()
        result = operation(workspace, params)
        compute_seconds = time.perf_counter() - started
    builds: Dict[str, int] = {}
    for stage, count in workspace.stats.builds_snapshot().items():
        delta = count - before.get(stage, 0)
        if delta:
            builds[stage] = delta
    payload = {"result": result, "builds": builds}
    if telemetry:
        payload["telemetry"] = {
            "pid": os.getpid(),
            "compute_seconds": compute_seconds,
        }
        if trace is not None:
            payload["telemetry"]["spans"] = trace.span_dicts()
        if _SHIP_METRICS:
            payload["telemetry"]["metrics"] = _METRICS.snapshot()
    return payload


def compute_safe(
    name: str, op: str, params: dict, request_id: Optional[str] = None,
    want_spans: bool = False,
) -> dict:
    """:func:`compute`, with library errors flattened to a payload the
    parent can re-raise — a ``ReproError`` crossing the process-pool
    boundary must not kill the worker's future machinery."""
    try:
        return compute(
            name, op, params, request_id=request_id, want_spans=want_spans
        )
    except ReproError as error:
        return {"error": str(error), "error_kind": type(error).__name__}
