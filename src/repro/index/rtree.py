"""A from-scratch R-tree (Guttman 1984, the paper's reference [10]).

Supports one-by-one insertion with quadratic split and
Sort-Tile-Recursive (STR) bulk loading, window (intersection) queries,
and nearest-neighbor queries by box distance.  Entries are
``(BoundingBox, payload)`` pairs; for TRACLUS the payload is the
segment index.

The tree exists to demonstrate Lemma 3's O(n log n) claim — the
production neighborhood engine uses the uniform grid, but both
structures answer the identical candidate queries and the scaling
benchmark exercises the R-tree directly.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import IndexError_
from repro.geometry.bbox import BoundingBox


class RTreeEntry:
    """A leaf entry: a box plus an opaque payload."""

    __slots__ = ("box", "payload")

    def __init__(self, box: BoundingBox, payload):
        self.box = box
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RTreeEntry({self.box!r}, payload={self.payload!r})"


class _Node:
    __slots__ = ("is_leaf", "entries", "children", "box")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[RTreeEntry] = []   # used when leaf
        self.children: List["_Node"] = []     # used when internal
        self.box: Optional[BoundingBox] = None

    def items(self):
        return self.entries if self.is_leaf else self.children

    def recompute_box(self) -> None:
        boxes = [e.box for e in self.entries] if self.is_leaf else [
            c.box for c in self.children
        ]
        self.box = BoundingBox.union_all(boxes) if boxes else None


class RTree:
    """Guttman R-tree with quadratic split.

    Parameters
    ----------
    max_entries:
        Node capacity M (>= 4).  ``min_entries`` defaults to ``M // 2``.
    """

    def __init__(self, max_entries: int = 16, min_entries: Optional[int] = None):
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = int(max_entries)
        self.min_entries = (
            int(min_entries) if min_entries is not None else max_entries // 2
        )
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [1, {self.max_entries // 2}], "
                f"got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def insert(self, box: BoundingBox, payload) -> None:
        """Insert one entry (Guttman's Insert with quadratic split)."""
        entry = RTreeEntry(box, payload)
        leaf, path = self._choose_leaf(entry.box)
        leaf.entries.append(entry)
        self._adjust_upward(leaf, path)
        self._size += 1

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Tuple[BoundingBox, object]],
        max_entries: int = 16,
    ) -> "RTree":
        """Sort-Tile-Recursive bulk loading.

        Produces a balanced tree with near-full nodes; far better query
        boxes than repeated insertion for static data (and O(n log n)
        build time, dominated by the sorts).
        """
        tree = cls(max_entries=max_entries)
        entries = [RTreeEntry(box, payload) for box, payload in items]
        if not entries:
            return tree
        tree._size = len(entries)

        # Build leaf level with STR tiling.
        nodes = tree._str_pack_leaves(entries)
        height = 1
        while len(nodes) > 1:
            nodes = tree._str_pack_internal(nodes)
            height += 1
        tree._root = nodes[0]
        tree._height = height
        return tree

    def _str_pack_leaves(self, entries: List[RTreeEntry]) -> List[_Node]:
        groups = self._str_tile([e.box.center for e in entries], entries)
        nodes = []
        for group in groups:
            node = _Node(is_leaf=True)
            node.entries = group
            node.recompute_box()
            nodes.append(node)
        return nodes

    def _str_pack_internal(self, children: List[_Node]) -> List[_Node]:
        groups = self._str_tile([c.box.center for c in children], children)
        nodes = []
        for group in groups:
            node = _Node(is_leaf=False)
            node.children = group
            node.recompute_box()
            nodes.append(node)
        return nodes

    def _str_tile(self, centers: Sequence[np.ndarray], items: list) -> List[list]:
        """Tile items into groups of <= max_entries using the STR
        recursion over dimensions."""
        n = len(items)
        capacity = self.max_entries
        n_nodes = math.ceil(n / capacity)
        if n_nodes <= 1:
            return [list(items)]
        dim = centers[0].shape[0]
        order = sorted(range(n), key=lambda k: tuple(centers[k]))

        def chunk(indices: List[int]) -> List[List[int]]:
            """Split into capacity-sized groups, rebalancing the last
            two so no group falls below min_entries (STR would
            otherwise leave one underfull node per level)."""
            groups = [
                indices[k : k + capacity]
                for k in range(0, len(indices), capacity)
            ]
            if len(groups) >= 2 and len(groups[-1]) < self.min_entries:
                deficit = self.min_entries - len(groups[-1])
                groups[-1] = groups[-2][-deficit:] + groups[-1]
                groups[-2] = groups[-2][:-deficit]
            return groups

        def tile(indices: List[int], axis: int) -> List[List[int]]:
            if axis >= dim - 1 or len(indices) <= capacity:
                return chunk(indices)
            remaining_axes = dim - axis
            n_groups = math.ceil(len(indices) / capacity)
            n_slabs = math.ceil(n_groups ** (1.0 / remaining_axes))
            slab_size = math.ceil(len(indices) / n_slabs)
            indices = sorted(indices, key=lambda k: float(centers[k][axis]))
            slabs = [
                indices[k : k + slab_size]
                for k in range(0, len(indices), slab_size)
            ]
            groups: List[List[int]] = []
            for slab in slabs:
                slab = sorted(slab, key=lambda k: float(centers[k][axis + 1]))
                groups.extend(tile(slab, axis + 1))
            return groups

        return [[items[k] for k in group] for group in tile(order, 0)]

    # -- Guttman insertion internals ---------------------------------------
    def _choose_leaf(self, box: BoundingBox) -> Tuple[_Node, List[_Node]]:
        """Descend picking the child needing least enlargement."""
        node = self._root
        path: List[_Node] = []
        while not node.is_leaf:
            path.append(node)
            best = min(
                node.children,
                key=lambda c: (c.box.enlargement(box), c.box.volume()),
            )
            node = best
        return node, path

    def _adjust_upward(self, node: _Node, path: List[_Node]) -> None:
        node.recompute_box()
        overflow = node if len(node.items()) > self.max_entries else None
        while path:
            parent = path.pop()
            if overflow is not None:
                left, right = self._split(overflow)
                parent.children.remove(overflow)
                parent.children.extend([left, right])
                overflow = parent if len(parent.children) > self.max_entries else None
            parent.recompute_box()
        if overflow is not None:
            # Root overflowed: grow the tree.
            left, right = self._split(overflow)
            new_root = _Node(is_leaf=False)
            new_root.children = [left, right]
            new_root.recompute_box()
            self._root = new_root
            self._height += 1

    def _split(self, node: _Node) -> Tuple[_Node, _Node]:
        """Guttman's quadratic split."""
        items = list(node.items())
        boxes = [it.box for it in items]

        # PickSeeds: the pair wasting the most volume together.
        worst, seeds = -math.inf, (0, 1)
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                waste = (
                    boxes[i].union(boxes[j]).volume()
                    - boxes[i].volume()
                    - boxes[j].volume()
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)

        left = _Node(is_leaf=node.is_leaf)
        right = _Node(is_leaf=node.is_leaf)
        groups = (left, right)
        group_boxes = [boxes[seeds[0]], boxes[seeds[1]]]
        assigned = {seeds[0]: 0, seeds[1]: 1}

        remaining = [k for k in range(len(items)) if k not in assigned]
        while remaining:
            # If one group must take everything left to reach min_entries:
            for g in (0, 1):
                need = self.min_entries - sum(
                    1 for v in assigned.values() if v == g
                )
                if need >= len(remaining):
                    for k in remaining:
                        assigned[k] = g
                        group_boxes[g] = group_boxes[g].union(boxes[k])
                    remaining = []
                    break
            if not remaining:
                break
            # PickNext: maximal difference in enlargement.
            best_k, best_diff, best_g = None, -math.inf, 0
            for k in remaining:
                d0 = group_boxes[0].enlargement(boxes[k])
                d1 = group_boxes[1].enlargement(boxes[k])
                diff = abs(d0 - d1)
                if diff > best_diff:
                    best_k, best_diff = k, diff
                    best_g = 0 if d0 < d1 else 1
            assigned[best_k] = best_g
            group_boxes[best_g] = group_boxes[best_g].union(boxes[best_k])
            remaining.remove(best_k)

        for k, g in assigned.items():
            target = groups[g]
            if node.is_leaf:
                target.entries.append(items[k])
            else:
                target.children.append(items[k])
        left.recompute_box()
        right.recompute_box()
        return left, right

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_window(self, window: BoundingBox) -> List[RTreeEntry]:
        """All entries whose boxes intersect *window*."""
        if self._root.box is None:
            return []
        results: List[RTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or not node.box.intersects(window):
                continue
            if node.is_leaf:
                results.extend(
                    e for e in node.entries if e.box.intersects(window)
                )
            else:
                stack.extend(node.children)
        return results

    def query_point(self, point: np.ndarray) -> List[RTreeEntry]:
        """All entries whose boxes contain *point*."""
        point = np.asarray(point, dtype=np.float64)
        window = BoundingBox(point, point)
        return self.query_window(window)

    def nearest(self, point: np.ndarray, k: int = 1) -> List[RTreeEntry]:
        """The *k* entries whose boxes are closest to *point* (best-first
        search on box distance)."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if self._root.box is None:
            return []
        point = np.asarray(point, dtype=np.float64)
        counter = 0  # tie-breaker so heapq never compares nodes
        heap: List[Tuple[float, int, object, bool]] = []
        heapq.heappush(
            heap, (self._root.box.min_distance_to_point(point), counter, self._root, False)
        )
        results: List[RTreeEntry] = []
        while heap and len(results) < k:
            dist, _, item, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append(item)
                continue
            node = item
            if node.is_leaf:
                for e in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (e.box.min_distance_to_point(point), counter, e, True),
                    )
            else:
                for c in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (c.box.min_distance_to_point(point), counter, c, False),
                    )
        return results

    # -- invariant checking (used heavily by tests) --------------------------
    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` if any structural invariant is
        violated: node fan-out bounds (root exempt), box containment,
        and uniform leaf depth."""
        if self._root.box is None:
            if self._size != 0:
                raise IndexError_("non-empty tree with empty root box")
            return

        leaf_depths = set()

        def visit(node: _Node, depth: int) -> None:
            count = len(node.items())
            if node is not self._root and count < self.min_entries:
                raise IndexError_(
                    f"underfull node: {count} < {self.min_entries}"
                )
            if count > self.max_entries:
                raise IndexError_(
                    f"overfull node: {count} > {self.max_entries}"
                )
            if node.is_leaf:
                leaf_depths.add(depth)
                for e in node.entries:
                    if not node.box.contains_box(e.box):
                        raise IndexError_("leaf box does not contain entry box")
            else:
                for c in node.children:
                    if not node.box.contains_box(c.box):
                        raise IndexError_("node box does not contain child box")
                    visit(c, depth + 1)

        visit(self._root, 1)
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at multiple depths: {sorted(leaf_depths)}")

    def __repr__(self) -> str:
        return (
            f"RTree(n={self._size}, height={self._height}, "
            f"max_entries={self.max_entries})"
        )
