"""Spatial index substrate (Lemma 3, reference [10]).

The paper reduces the grouping phase to O(n log n) by answering
ε-neighborhood queries through a spatial index such as the R-tree.  We
provide two structures over segment bounding boxes:

* :class:`~repro.index.rtree.RTree` — a from-scratch Guttman R-tree
  (quadratic split) with STR bulk loading;
* :class:`~repro.index.grid.SegmentGrid` — a uniform hash grid, which
  is what the clustering engine uses by default (same candidate set
  semantics, lower constant factors in pure Python).
"""

from repro.index.grid import SegmentGrid
from repro.index.rtree import RTree, RTreeEntry

__all__ = ["SegmentGrid", "RTree", "RTreeEntry"]
