"""Uniform hash-grid over segment bounding boxes.

Each segment is registered in every grid cell its bounding box
overlaps; a candidate query gathers the segments registered in the
cells overlapped by the query window.  Cells are stored sparsely in a
dict keyed by integer cell coordinates, so empty space costs nothing.

Segments whose boxes would cover an excessive number of cells (a few
trans-continental outliers exist in any trajectory dataset) are kept in
an *oversize* list that is appended to every candidate set — cheaper
than rasterising thousands of cells and still exact.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import IndexError_
from repro.model.segmentset import SegmentSet


class SegmentGrid:
    """Sparse uniform grid over the bounding boxes of a segment set.

    Parameters
    ----------
    segments:
        The (immutable) segment store to index.
    cell_size:
        Edge length of the cubic cells.  Good values are comparable to
        the query radius the caller will use.
    max_cells_per_segment:
        Segments overlapping more cells than this go to the oversize
        list instead of the grid.
    """

    def __init__(
        self,
        segments: SegmentSet,
        cell_size: float,
        max_cells_per_segment: int = 1024,
    ):
        if cell_size <= 0:
            raise IndexError_(f"cell_size must be positive, got {cell_size}")
        self.segments = segments
        self.cell_size = float(cell_size)
        self.max_cells_per_segment = int(max_cells_per_segment)
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        self._oversize: List[int] = []
        if len(segments) > 0:
            self._origin = np.minimum(
                segments.starts.min(axis=0), segments.ends.min(axis=0)
            )
        else:
            self._origin = np.zeros(segments.dim)
        for i in range(len(segments)):
            self._insert(i)

    # -- construction ------------------------------------------------------
    def _cell_range(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        lo_cell = np.floor((lo - self._origin) / self.cell_size).astype(np.int64)
        hi_cell = np.floor((hi - self._origin) / self.cell_size).astype(np.int64)
        return lo_cell, hi_cell

    def _insert(self, index: int) -> None:
        lo = np.minimum(self.segments.starts[index], self.segments.ends[index])
        hi = np.maximum(self.segments.starts[index], self.segments.ends[index])
        lo_cell, hi_cell = self._cell_range(lo, hi)
        spans = hi_cell - lo_cell + 1
        # Product in float: tiny cells give spans that overflow int64.
        if float(np.prod(spans, dtype=np.float64)) > self.max_cells_per_segment:
            self._oversize.append(index)
            return
        ranges = [range(int(a), int(b) + 1) for a, b in zip(lo_cell, hi_cell)]
        for cell in product(*ranges):
            self._cells.setdefault(cell, []).append(index)

    # -- dynamic maintenance -------------------------------------------------
    def insert(self, index: int) -> None:
        """Register stored segment *index* (for dynamic callers whose
        segment store grows after construction)."""
        if not 0 <= index < len(self.segments):
            raise IndexError_(
                f"segment index {index} out of range 0..{len(self.segments) - 1}"
            )
        self._insert(index)

    def remove(self, index: int) -> None:
        """Unregister stored segment *index*.  The segment's coordinates
        must be unchanged since insertion (cells are recomputed from
        them)."""
        lo = np.minimum(self.segments.starts[index], self.segments.ends[index])
        hi = np.maximum(self.segments.starts[index], self.segments.ends[index])
        lo_cell, hi_cell = self._cell_range(lo, hi)
        spans = hi_cell - lo_cell + 1
        if float(np.prod(spans, dtype=np.float64)) > self.max_cells_per_segment:
            self._oversize.remove(index)
            return
        ranges = [range(int(a), int(b) + 1) for a, b in zip(lo_cell, hi_cell)]
        for cell in product(*ranges):
            members = self._cells[cell]
            members.remove(index)
            if not members:
                del self._cells[cell]

    # -- queries -----------------------------------------------------------
    def candidates_in_window(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Indices of all segments whose boxes *may* overlap the window
        ``[lo, hi]`` (superset of the true overlaps; never misses one
        that was inserted)."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        lo_cell, hi_cell = self._cell_range(lo, hi)
        spans = hi_cell - lo_cell + 1
        found: List[int] = list(self._oversize)
        if float(np.prod(spans, dtype=np.float64)) > 16 * self.max_cells_per_segment:
            # The window covers most of the domain; scanning every cell
            # key is cheaper than rasterising the window.
            for cell, members in self._cells.items():
                if all(a <= c <= b for c, a, b in zip(cell, lo_cell, hi_cell)):
                    found.extend(members)
        else:
            ranges = [range(int(a), int(b) + 1) for a, b in zip(lo_cell, hi_cell)]
            for cell in product(*ranges):
                members = self._cells.get(cell)
                if members:
                    found.extend(members)
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.asarray(found, dtype=np.int64))

    def candidates_near(self, index: int, radius: float) -> np.ndarray:
        """Candidate neighbors of stored segment *index* within Euclidean
        window *radius* (bbox-to-bbox)."""
        if not 0 <= index < len(self.segments):
            raise IndexError_(
                f"segment index {index} out of range 0..{len(self.segments) - 1}"
            )
        lo = np.minimum(self.segments.starts[index], self.segments.ends[index])
        hi = np.maximum(self.segments.starts[index], self.segments.ends[index])
        return self.candidates_in_window(lo - radius, hi + radius)

    def candidates_near_many(
        self, indices: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`candidates_near`: ``(query_pos, candidate)``
        pair arrays, query-major with candidates ascending and deduped
        per query — for each position ``q`` in *indices*, the rows with
        ``query_pos == q`` hold exactly ``candidates_near(indices[q],
        radius)``.

        The point is the join order: the batch's cell windows are
        rasterised into one cell -> queries table first, so each
        distinct cell key is looked up in the grid *once* for the whole
        batch instead of once per overlapping query.
        """
        indices = np.asarray(indices, dtype=np.int64)
        query_parts: List[np.ndarray] = []
        candidate_parts: List[np.ndarray] = []
        cell_to_queries: Dict[Tuple[int, ...], List[int]] = {}
        rastered: List[int] = []
        for qpos, index in enumerate(indices.tolist()):
            if not 0 <= index < len(self.segments):
                raise IndexError_(
                    f"segment index {index} out of range "
                    f"0..{len(self.segments) - 1}"
                )
            lo = np.minimum(
                self.segments.starts[index], self.segments.ends[index]
            )
            hi = np.maximum(
                self.segments.starts[index], self.segments.ends[index]
            )
            lo_cell, hi_cell = self._cell_range(lo - radius, hi + radius)
            spans = hi_cell - lo_cell + 1
            if (
                float(np.prod(spans, dtype=np.float64))
                > 16 * self.max_cells_per_segment
            ):
                # Same huge-window escape as candidates_in_window:
                # cheaper to answer this query alone than rasterise it.
                found = self.candidates_in_window(lo - radius, hi + radius)
                query_parts.append(
                    np.full(found.size, qpos, dtype=np.int64)
                )
                candidate_parts.append(found)
                continue
            rastered.append(qpos)
            ranges = [
                range(int(a), int(b) + 1) for a, b in zip(lo_cell, hi_cell)
            ]
            for cell in product(*ranges):
                cell_to_queries.setdefault(cell, []).append(qpos)
        hits_q: List[int] = []
        hits_c: List[int] = []
        for cell, queries in cell_to_queries.items():
            members = self._cells.get(cell)
            if not members:
                continue
            for qpos in queries:
                hits_q.extend([qpos] * len(members))
                hits_c.extend(members)
        if self._oversize and rastered:
            for qpos in rastered:
                hits_q.extend([qpos] * len(self._oversize))
                hits_c.extend(self._oversize)
        if hits_q:
            query_parts.append(np.asarray(hits_q, dtype=np.int64))
            candidate_parts.append(np.asarray(hits_c, dtype=np.int64))
        if not query_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        query_pos = np.concatenate(query_parts)
        candidates = np.concatenate(candidate_parts)
        # Dedup (query, candidate) pairs; the combined key sorts
        # query-major with candidates ascending, matching the per-query
        # np.unique of candidates_in_window.
        span = max(len(self.segments), 1)
        keys = np.unique(query_pos * span + candidates)
        return keys // span, keys % span

    # -- introspection -------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._cells)

    @property
    def n_oversize(self) -> int:
        return len(self._oversize)

    def __repr__(self) -> str:
        return (
            f"SegmentGrid(n_segments={len(self.segments)}, "
            f"cell_size={self.cell_size}, n_cells={self.n_cells}, "
            f"n_oversize={self.n_oversize})"
        )
