"""CSV trajectory I/O.

The on-disk format is long/tidy: one row per point,

    traj_id, x, y[, z, ...][, t]

with a header naming the columns.  ``weight`` and ``label`` are
carried in optional per-trajectory metadata columns (repeated on every
row of the trajectory; the first row wins on read).

:func:`iter_point_rows` reads the same format *incrementally* — one
point per yield, optionally tailing a growing file — for the streaming
pipeline (``repro stream``).
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.model.trajectory import Trajectory


def write_trajectories_csv(
    trajectories: Sequence[Trajectory],
    destination: Union[str, TextIO],
    include_times: bool = False,
) -> None:
    """Write trajectories in the long CSV format."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            write_trajectories_csv(trajectories, handle, include_times)
            return
    trajectories = list(trajectories)
    if not trajectories:
        raise DatasetError("refusing to write an empty dataset")
    dims = {t.dim for t in trajectories}
    if len(dims) != 1:
        raise DatasetError(
            f"all trajectories must share one dimensionality to share a "
            f"CSV header, got dims {sorted(dims)}"
        )
    dim = trajectories[0].dim
    coordinate_names = [f"c{k}" for k in range(dim)]
    header = ["traj_id", *coordinate_names, "weight", "label"]
    if include_times:
        header.append("t")
    writer = csv.writer(destination)
    writer.writerow(header)
    for trajectory in trajectories:
        for row_index, point in enumerate(trajectory.points):
            row: List = [trajectory.traj_id, *point.tolist(),
                         trajectory.weight, trajectory.label]
            if include_times:
                time = (
                    trajectory.times[row_index]
                    if trajectory.times is not None
                    else row_index
                )
                row.append(time)
            writer.writerow(row)


def read_trajectories_csv(source: Union[str, TextIO]) -> List[Trajectory]:
    """Read trajectories written by :func:`write_trajectories_csv`.

    Grouping is by ``traj_id`` in file order; the coordinate columns
    are every ``c*`` column in header order.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return read_trajectories_csv(handle)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise DatasetError("empty CSV input") from None
    try:
        id_col = header.index("traj_id")
    except ValueError:
        raise DatasetError("CSV header must contain a 'traj_id' column") from None
    coord_cols = [k for k, name in enumerate(header) if name.startswith("c")]
    if not coord_cols:
        raise DatasetError("CSV header has no coordinate (c*) columns")
    weight_col = header.index("weight") if "weight" in header else None
    label_col = header.index("label") if "label" in header else None
    time_col = header.index("t") if "t" in header else None

    groups: "dict[int, dict]" = {}
    order: List[int] = []
    for row in reader:
        if not row:
            continue
        traj_id = int(row[id_col])
        if traj_id not in groups:
            groups[traj_id] = {
                "points": [],
                "times": [],
                "weight": float(row[weight_col]) if weight_col is not None else 1.0,
                "label": row[label_col] if label_col is not None else "",
            }
            order.append(traj_id)
        groups[traj_id]["points"].append([float(row[k]) for k in coord_cols])
        if time_col is not None:
            groups[traj_id]["times"].append(float(row[time_col]))

    trajectories: List[Trajectory] = []
    for traj_id in order:
        group = groups[traj_id]
        times = np.asarray(group["times"]) if group["times"] else None
        trajectories.append(
            Trajectory(
                np.asarray(group["points"], dtype=np.float64),
                traj_id=traj_id,
                weight=group["weight"],
                times=times,
                label=group["label"],
            )
        )
    return trajectories


def read_csv_header(source: TextIO) -> List[str]:
    """Consume and parse the header line of a long-format CSV handle."""
    header_line = source.readline()
    if not header_line.strip():
        raise DatasetError("empty CSV input")
    return next(csv.reader([header_line]))


@dataclass(frozen=True)
class PointRow:
    """One point of the long CSV format, read incrementally."""

    traj_id: int
    point: np.ndarray
    weight: float
    time: Optional[float]


def iter_point_rows(
    source: Union[str, TextIO],
    follow: bool = False,
    poll: float = 0.5,
    max_polls: Optional[int] = None,
    header: Optional[Sequence[str]] = None,
) -> Iterator[PointRow]:
    """Yield the points of a long-format trajectory CSV one at a time.

    With ``follow=True`` the iterator does not stop at end-of-file: it
    sleeps *poll* seconds and retries, tailing a file another process
    is appending to (``tail -f`` semantics; partial trailing lines are
    left in place until their newline arrives).  ``max_polls`` bounds
    the number of consecutive empty polls (``None`` = forever); when it
    exhausts, the handle is left at the last complete-line boundary, so
    a later call can resume exactly where this one stopped.

    ``header`` supplies already-parsed column names for such resumed
    reads: the handle is taken to be positioned at the first unread
    data row and no header line is consumed (used by ``repro stream
    --bulk-load``, which reads a file's current contents once and then
    keeps tailing the same handle).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            yield from iter_point_rows(handle, follow, poll, max_polls, header)
            return
    if header is None:
        header = read_csv_header(source)
    else:
        header = list(header)
    try:
        id_col = header.index("traj_id")
    except ValueError:
        raise DatasetError("CSV header must contain a 'traj_id' column") from None
    coord_cols = [k for k, name in enumerate(header) if name.startswith("c")]
    if not coord_cols:
        raise DatasetError("CSV header has no coordinate (c*) columns")
    weight_col = header.index("weight") if "weight" in header else None
    time_col = header.index("t") if "t" in header else None

    idle_polls = 0
    # Text-mode tell() costs more than the readline itself, so track
    # rewind positions only when tailing can actually rewind.
    position = source.tell() if follow else 0
    while True:
        line = source.readline()
        if not line or (follow and not line.endswith("\n")):
            if follow:
                # While tailing, a line may still be mid-write: rewind
                # so the retry — or whoever reads the handle after a
                # max_polls return — sees it whole.
                source.seek(position)
            if not follow or (max_polls is not None and idle_polls >= max_polls):
                return
            idle_polls += 1
            time.sleep(poll)
            continue
        if follow:
            position = source.tell()
        idle_polls = 0
        if not line.strip():
            continue
        row = next(csv.reader([line]))
        yield PointRow(
            traj_id=int(row[id_col]),
            point=np.array([float(row[k]) for k in coord_cols]),
            weight=float(row[weight_col]) if weight_col is not None else 1.0,
            time=float(row[time_col]) if time_col is not None else None,
        )
