"""JSON trajectory and result serialisation.

Trajectories serialise as a list of objects; a clustering result
serialises to a structure holding cluster memberships, noise indices,
representative polylines and the run parameters — enough to archive an
experiment without pickling live objects.
"""

from __future__ import annotations

import json
from typing import List, Sequence, TextIO, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.model.result import ClusteringResult
from repro.model.trajectory import Trajectory


def write_trajectories_json(
    trajectories: Sequence[Trajectory],
    destination: Union[str, TextIO],
    indent: int = 0,
) -> None:
    """Write trajectories as a JSON array."""
    payload = [
        {
            "traj_id": t.traj_id,
            "weight": t.weight,
            "label": t.label,
            "points": t.points.tolist(),
            **({"times": t.times.tolist()} if t.times is not None else {}),
        }
        for t in trajectories
    ]
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent or None)
        return
    json.dump(payload, destination, indent=indent or None)


def read_trajectories_json(source: Union[str, TextIO]) -> List[Trajectory]:
    """Read trajectories written by :func:`write_trajectories_json`."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    if not isinstance(payload, list):
        raise DatasetError("expected a JSON array of trajectory objects")
    trajectories: List[Trajectory] = []
    for item in payload:
        times = np.asarray(item["times"]) if "times" in item else None
        trajectories.append(
            Trajectory(
                np.asarray(item["points"], dtype=np.float64),
                traj_id=int(item["traj_id"]),
                weight=float(item.get("weight", 1.0)),
                times=times,
                label=item.get("label", ""),
            )
        )
    return trajectories


def result_to_dict(result: ClusteringResult) -> dict:
    """A JSON-ready dictionary describing a clustering result."""
    return {
        "parameters": result.parameters,
        "n_segments": len(result.segments),
        "labels": result.labels.tolist(),
        "clusters": [
            {
                "cluster_id": c.cluster_id,
                "member_indices": c.member_indices.tolist(),
                "trajectory_cardinality": c.trajectory_cardinality(),
                "representative": (
                    c.representative.tolist()
                    if c.representative is not None
                    else None
                ),
            }
            for c in result.clusters
        ],
        "characteristic_points": result.characteristic_points,
        "summary": result.summary(),
    }


def write_result_json(
    result: ClusteringResult,
    destination: Union[str, TextIO],
    indent: int = 2,
) -> None:
    """Archive a clustering result as JSON."""
    payload = result_to_dict(result)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent)
        return
    json.dump(payload, destination, indent=indent)
