"""Trajectory serialisation: CSV and JSON round trips."""

from repro.io.csvio import read_trajectories_csv, write_trajectories_csv
from repro.io.jsonio import (
    read_trajectories_json,
    write_trajectories_json,
    result_to_dict,
    write_result_json,
)

__all__ = [
    "read_trajectories_csv",
    "write_trajectories_csv",
    "read_trajectories_json",
    "write_trajectories_json",
    "result_to_dict",
    "write_result_json",
]
