"""Exact npz (de)serialization of Workspace artifacts.

One artifact == one ``.npz`` file: a flat dict of NumPy arrays plus a
JSON metadata record (stored as a uint8 byte array under
``__meta__``).  ``numpy`` round-trips raw array bytes, so every dtype —
int64 labels and counts, float64 distances and coordinates — is
restored **bitwise**; the round-trip tests in
``tests/api/test_cache.py`` pin exactly that.

Writes go through a temp file + :func:`os.replace` so a crashed or
interrupted run can never leave a half-written artifact behind: readers
see either the previous version or the new one.

Ragged lists (per-trajectory characteristic points, per-cluster
representative polylines) are packed as ``(flat, offsets)`` pairs by
:func:`pack_ragged` / :func:`unpack_ragged`.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ReproError

#: Metadata key inside the npz payload (reserved; artifacts cannot use it).
META_KEY = "__meta__"


def pack_ragged(
    rows: Sequence[Sequence[float]], dtype=np.int64
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack a list of variable-length rows into ``(flat, offsets)``;
    row *i* is ``flat[offsets[i]:offsets[i + 1]]``."""
    lengths = np.array([len(row) for row in rows], dtype=np.int64)
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if offsets[-1] == 0:
        return np.empty(0, dtype=dtype), offsets
    flat = np.concatenate([np.asarray(row, dtype=dtype) for row in rows if len(row)])
    return flat, offsets


def unpack_ragged(flat: np.ndarray, offsets: np.ndarray) -> List[np.ndarray]:
    """Invert :func:`pack_ragged`."""
    return [
        flat[offsets[i]:offsets[i + 1]] for i in range(offsets.size - 1)
    ]


def save_artifact(
    path: str, arrays: Dict[str, np.ndarray], meta: Optional[dict] = None
) -> None:
    """Write one artifact atomically (temp file + rename)."""
    if META_KEY in arrays:
        raise ReproError(f"array name {META_KEY!r} is reserved for metadata")
    payload = dict(arrays)
    payload[META_KEY] = np.frombuffer(
        json.dumps(meta or {}, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    # The temp name must be unique per *call*, not per process: two
    # threads of one serving process writing the same artifact would
    # otherwise share a temp path (one clobbers the other's bytes, and
    # an unconditional cleanup can unlink a peer's in-flight temp).
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=f"{os.path.basename(path)}.tmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already gone
            pass
        raise


def load_artifact(path: str) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read one artifact back as ``(arrays, meta)``."""
    with np.load(path) as archive:
        arrays = {
            name: archive[name] for name in archive.files if name != META_KEY
        }
        meta = (
            json.loads(archive[META_KEY].tobytes().decode("utf-8"))
            if META_KEY in archive.files
            else {}
        )
    return arrays, meta


def load_artifact_meta(path: str) -> dict:
    """Read only the metadata record of an artifact.

    ``np.load`` decompresses zip members lazily, so this touches just
    the small ``__meta__`` byte array — the inspector can index a cache
    directory full of multi-MB graphs without materialising any of
    them."""
    with np.load(path) as archive:
        if META_KEY not in archive.files:
            return {}
        return json.loads(archive[META_KEY].tobytes().decode("utf-8"))
