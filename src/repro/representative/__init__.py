"""Representative Trajectory Generation (Section 4.3).

The representative trajectory of a cluster is a sweep-line average: the
axes are rotated so X' runs along the cluster's *average direction
vector* (Definition 11), the segment endpoints are sorted by X', and a
vertical sweep records the average Y' of all segments crossing each
position where at least MinLns segments are present (Figure 15).
"""

from repro.representative.direction import average_direction_vector, major_axis
from repro.representative.sweep import (
    RepresentativeConfig,
    generate_representative,
    generate_all_representatives,
)

__all__ = [
    "average_direction_vector",
    "major_axis",
    "RepresentativeConfig",
    "generate_representative",
    "generate_all_representatives",
]
