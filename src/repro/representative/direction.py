"""Average direction vector (Definition 11) and major-axis fallback.

Definition 11 averages the member *vectors* (not unit vectors), "a nice
heuristic giving the effect of a longer vector contributing more to the
average direction vector."

The paper implicitly assumes the average does not vanish.  For a
cluster of opposing directions (possible with the undirected distance)
the average can be numerically zero; we then fall back to the principal
axis of the endpoint cloud, oriented along the first member vector, so
that representative generation still has a well-defined sweep axis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.model.segmentset import SegmentSet


def average_direction_vector(segments: SegmentSet) -> np.ndarray:
    """Formula (8): ``(v1 + ... + vn) / |V|`` over the member vectors."""
    if len(segments) == 0:
        raise ClusteringError("cannot average directions of an empty set")
    return segments.vectors.mean(axis=0)


def _principal_axis(segments: SegmentSet) -> np.ndarray:
    """First principal component of the segment endpoints (fallback
    sweep axis for direction-balanced clusters)."""
    points = np.vstack([segments.starts, segments.ends])
    centered = points - points.mean(axis=0)
    # SVD of the centered cloud; right singular vector of the largest
    # singular value is the major axis.
    _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
    if singular_values[0] <= 1e-12:
        # Every endpoint coincides: no spatial extent, no axis.
        return np.zeros(points.shape[1])
    axis = vt[0]
    # Orient along the first non-degenerate member vector for
    # reproducibility.
    for vector in segments.vectors:
        norm = np.linalg.norm(vector)
        if norm > 0 and float(np.dot(axis, vector)) < 0:
            return -axis
        if norm > 0:
            return axis
    return axis


def major_axis(segments: SegmentSet, relative_tolerance: float = 1e-9) -> np.ndarray:
    """The sweep axis: the average direction vector, or the principal
    axis of the endpoints when the average is (numerically) zero.

    The result always has positive norm; raises
    :class:`ClusteringError` only if every endpoint coincides (no axis
    exists)."""
    mean_vector = average_direction_vector(segments)
    scale = float(np.max(segments.lengths)) if len(segments) else 0.0
    if float(np.linalg.norm(mean_vector)) > relative_tolerance * max(scale, 1.0):
        return mean_vector
    axis = _principal_axis(segments)
    if float(np.linalg.norm(axis)) == 0.0:
        raise ClusteringError(
            "cluster is a single point cloud with no spatial extent; "
            "no major axis exists"
        )
    return axis
