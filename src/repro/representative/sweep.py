"""The sweep-line representative trajectory algorithm (Figure 15).

Steps, following the paper:

1. compute the cluster's average direction vector (Definition 11);
2. rotate the axes so X' is parallel to it (Formula 9) — we use a
   Householder frame, which reduces to the paper's 2-D rotation up to a
   reflection and generalises to any dimension ("the same approach can
   be applied also to three dimensions");
3. sort the segment endpoints by X' value;
4. sweep: at each endpoint position ``p``, count the segments whose X'
   extent contains ``p``; if the count reaches MinLns and ``p`` is at
   least γ past the previously inserted position, insert the average of
   the crossing segments' coordinates at that position (interpolated
   along each segment), mapped back to the original frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ClusteringError
from repro.model.cluster import Cluster
from repro.representative.direction import major_axis


@dataclass(frozen=True)
class RepresentativeConfig:
    """Knobs of Figure 15.

    Attributes
    ----------
    min_lns:
        The sweep threshold MinLns — positions crossed by fewer
        segments are skipped.
    gamma:
        Smoothing parameter γ: minimum X' gap between consecutive
        inserted points.  With the default 0.0, exact-duplicate sweep
        positions are still collapsed (a strictly positive gap is
        required), matching the intent of "a previous point located too
        close ... is skipped".
    """

    min_lns: float = 3.0
    gamma: float = 0.0

    def __post_init__(self):
        if self.min_lns <= 0:
            raise ClusteringError(f"min_lns must be positive, got {self.min_lns}")
        if self.gamma < 0:
            raise ClusteringError(f"gamma must be non-negative, got {self.gamma}")


def _householder_frame(direction: np.ndarray) -> np.ndarray:
    """Orthonormal, self-inverse matrix H with ``H @ unit(direction) =
    e1``; coordinates ``x' = H @ x`` have their first component along
    *direction* (the X' axis of Figure 14)."""
    direction = np.asarray(direction, dtype=np.float64)
    norm = float(np.linalg.norm(direction))
    if norm == 0.0:
        raise ClusteringError("sweep axis must be a non-zero vector")
    unit = direction / norm
    e1 = np.zeros_like(unit)
    e1[0] = 1.0
    w = unit - e1
    w_norm_sq = float(np.dot(w, w))
    if w_norm_sq < 1e-30:
        return np.eye(unit.shape[0])
    return np.eye(unit.shape[0]) - 2.0 * np.outer(w, w) / w_norm_sq


def generate_representative(
    cluster: Cluster,
    config: Optional[RepresentativeConfig] = None,
) -> np.ndarray:
    """Representative trajectory of one cluster (Figure 15).

    Returns a ``(k, d)`` array of points in the original coordinate
    frame; ``k`` may be 0 or 1 when the members never overlap enough
    along the major axis to reach MinLns at two distinct positions.
    """
    if config is None:
        config = RepresentativeConfig()
    members = cluster.member_set()
    if len(members) == 0:
        raise ClusteringError("cannot summarise an empty cluster")

    axis = major_axis(members)  # line 01
    frame = _householder_frame(axis)  # line 02
    starts = members.starts @ frame.T
    ends = members.ends @ frame.T

    # X' extents of each member segment.
    x_low = np.minimum(starts[:, 0], ends[:, 0])
    x_high = np.maximum(starts[:, 0], ends[:, 0])

    # Lines 03-04: all endpoints sorted by X' value.
    sweep_positions = np.sort(np.concatenate([starts[:, 0], ends[:, 0]]))

    # Positions closer than a relative epsilon are one position for all
    # practical purposes; collapsing them keeps the output strictly
    # monotone along the axis even when gamma is 0.
    span = float(sweep_positions[-1] - sweep_positions[0])
    min_gap = max(1e-12, 1e-9 * span)

    representative: List[np.ndarray] = []
    last_inserted_x: Optional[float] = None
    for x in sweep_positions:  # line 05
        crossing = np.nonzero((x_low <= x) & (x <= x_high))[0]  # line 06
        if crossing.size < config.min_lns:  # line 07
            continue
        if last_inserted_x is not None:  # lines 08-09
            diff = x - last_inserted_x
            if diff < config.gamma or diff < min_gap:
                continue
        average = _average_crossing_coordinate(
            starts[crossing], ends[crossing], x
        )  # line 10
        point = frame.T @ average  # line 11 (H is self-inverse; H.T == H)
        representative.append(point)  # line 12
        last_inserted_x = float(x)

    if not representative:
        return np.empty((0, members.dim), dtype=np.float64)
    return np.vstack(representative)


def _average_crossing_coordinate(
    starts: np.ndarray, ends: np.ndarray, x: float
) -> np.ndarray:
    """Average rotated coordinate of the crossing segments at X' = x.

    Each segment contributes its interpolated point at X' = x; segments
    perpendicular to the sweep axis (zero X' extent) contribute their
    midpoint.  The first coordinate of the result is pinned to ``x``.
    """
    span = ends[:, 0] - starts[:, 0]
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.where(span != 0.0, (x - starts[:, 0]) / np.where(span != 0, span, 1.0), 0.5)
    t = np.clip(t, 0.0, 1.0)
    points = starts + t[:, None] * (ends - starts)
    average = points.mean(axis=0)
    average[0] = x
    return average


def generate_all_representatives(
    clusters: Sequence[Cluster],
    config: Optional[RepresentativeConfig] = None,
) -> List[np.ndarray]:
    """Attach a representative to every cluster (Figure 4 lines 05-06)
    and return the list in cluster order."""
    outputs: List[np.ndarray] = []
    for cluster in clusters:
        representative = generate_representative(cluster, config)
        cluster.representative = representative
        outputs.append(representative)
    return outputs
