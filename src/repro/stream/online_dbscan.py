"""Incremental line-segment DBSCAN: Figure 12 labels under updates.

The batch algorithm's output is a *deterministic function of the
ε-graph* — no replay of its scan is needed.  Unwinding Figure 12:

* a segment is **core** iff its ε-cardinality (count, or summed weight
  with the Section 4.2 extension) reaches MinLns; cardinality is fixed
  by the graph, so "previously noise" segments can never expand;
* cores that are ε-neighbors always share a cluster (a core reached by
  an earlier cluster's expansion is itself expanded into it), so the
  clusters' core sets are exactly the **connected components of the
  core subgraph**;
* each cluster is fully expanded before the scan proceeds (Figure 12
  line 09), so clusters *form* in ascending order of their smallest
  core index (their *seed*), and a contested **border** segment
  (non-core with core neighbors) is claimed by the earliest-formed
  component among them — expansion (line 23) never overwrites a
  cluster label — *unless* the border lies in the ε-neighborhood of a
  later-formed cluster's seed: line 07 assigns the whole seed
  neighborhood unconditionally, so the last seed adjacent to the
  border wins;
* Step 3 removes clusters below the trajectory-cardinality threshold
  and the survivors are renumbered densely in formation order.

:class:`OnlineDBSCAN` therefore maintains, per update: exact
cardinalities, core promotion/demotion, the core components (merge via
union-by-size; splits by reclustering bounded to the affected
component), and per-segment core-neighbor sets for border assignment.
:meth:`labels` evaluates the rules above — and because slot order
equals compacted positional order, the result is *identical* (not just
equivalent up to relabeling) to ``LineSegmentDBSCAN.fit`` on the
surviving segments.  Representative trajectories (Figure 15) are
refreshed lazily: clusters whose membership is unchanged reuse the
cached sweep result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.model.cluster import NOISE, Cluster
from repro.representative.sweep import (
    RepresentativeConfig,
    generate_representative,
)
from repro.stream.dynamic_graph import DynamicNeighborGraph


class OnlineDBSCAN:
    """Figure 12 labels maintained under segment insert and evict.

    Parameters mirror :class:`~repro.cluster.dbscan.LineSegmentDBSCAN`
    (eps, MinLns, distance, the Step-3 ``cardinality_threshold``
    defaulting to MinLns, and ``use_weights``); ``dim`` fixes the
    spatial dimensionality of the stream.
    """

    def __init__(
        self,
        eps: float,
        min_lns: float,
        distance: Optional[SegmentDistance] = None,
        cardinality_threshold: Optional[float] = None,
        use_weights: bool = False,
        dim: int = 2,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if min_lns <= 0:
            raise ClusteringError(f"min_lns must be positive, got {min_lns}")
        self.eps = float(eps)
        self.min_lns = float(min_lns)
        self.distance = distance if distance is not None else SegmentDistance()
        self.cardinality_threshold = (
            float(cardinality_threshold)
            if cardinality_threshold is not None
            else float(min_lns)
        )
        self.use_weights = bool(use_weights)
        self.graph = DynamicNeighborGraph(self.eps, self.distance, dim=dim)
        # |N_eps| including self: int count, or the batch-identical
        # weighted sum (recomputed on touch; see _cardinality).
        self._card: Dict[int, float] = {}
        self._core: Set[int] = set()
        # Core ε-neighbors of every live slot (cores adjacent to a core
        # are, by the component invariant, always in the same component).
        self._core_neighbors: Dict[int, Set[int]] = {}
        # Core components: opaque token per core.  Tokens come from a
        # monotone counter, never from slot ids — a demoted slot can be
        # promoted again later, and a slot-id token it minted earlier
        # may still name a surviving component.
        self._comp_of: Dict[int, int] = {}
        self._comp_members: Dict[int, Set[int]] = {}
        self._comp_min: Dict[int, int] = {}
        self._next_comp = 0
        self._rep_cache: Dict[bytes, np.ndarray] = {}

    # -- cardinality -------------------------------------------------------
    @property
    def store(self):
        return self.graph.store

    def _cardinality(self, slot: int) -> float:
        """Exact |N_eps(slot)| as the batch computes it.

        Weighted sums are *recomputed* from the ascending neighbor row
        (never incrementally adjusted): ``np.sum`` over the same-order
        array is bitwise identical to the batch's, so a sum that lands
        exactly on MinLns classifies identically — float drift from
        repeated add/subtract would not.
        """
        if not self.use_weights:
            return float(len(self.graph.adjacent(slot)) + 1)
        neighbors = self.graph.neighbors_of(slot)
        return float(np.sum(self.store.weights[neighbors]))

    def cardinality(self, slot: int) -> float:
        if slot not in self._card:
            raise ClusteringError(f"slot {slot} is not alive")
        return self._card[slot]

    def is_core(self, slot: int) -> bool:
        return slot in self._core

    # -- component machinery -----------------------------------------------
    def _new_component(self, members: Set[int]) -> int:
        token = self._next_comp
        self._next_comp += 1
        for member in members:
            self._comp_of[member] = token
        self._comp_members[token] = members
        self._comp_min[token] = min(members)
        return token

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._comp_of[a], self._comp_of[b]
        if ra == rb:
            return
        if len(self._comp_members[ra]) < len(self._comp_members[rb]):
            ra, rb = rb, ra
        small = self._comp_members.pop(rb)
        for member in small:
            self._comp_of[member] = ra
        self._comp_members[ra].update(small)
        self._comp_min[ra] = min(
            self._comp_min[ra], self._comp_min.pop(rb)
        )

    def _promote(self, slots: List[int]) -> None:
        """Make *slots* core (flags and singleton components first, then
        unions — order-independent even when two promotions are
        adjacent)."""
        for u in slots:
            self._core.add(u)
            self._new_component({u})
            for w in self.graph.adjacent(u):
                self._core_neighbors[w].add(u)
        for u in slots:
            for w in list(self._core_neighbors[u]):
                self._union(u, w)

    def _remove_from_component(self, x: int) -> int:
        root = self._comp_of.pop(x)
        self._comp_members[root].discard(x)
        return root

    def _repair_components(
        self, removals_by_root: Dict[int, List[Tuple[int, int]]]
    ) -> None:
        """Re-establish connectivity of each affected component after
        core removals.  ``removals_by_root[root]`` lists ``(slot,
        core_degree_at_removal)`` pairs; a lone degree<=1 removal cannot
        disconnect the rest, so the BFS recluster (bounded to the
        component) runs only when a split is possible."""
        for root, removals in removals_by_root.items():
            members = self._comp_members[root]
            if not members:
                del self._comp_members[root]
                del self._comp_min[root]
                continue
            if len(removals) == 1 and removals[0][1] <= 1:
                if removals[0][0] == self._comp_min[root]:
                    self._comp_min[root] = min(members)
                continue
            del self._comp_members[root]
            del self._comp_min[root]
            remaining = set(members)
            while remaining:
                seed = remaining.pop()
                component = {seed}
                stack = [seed]
                while stack:
                    u = stack.pop()
                    for w in self._core_neighbors[u]:
                        if w in remaining:
                            remaining.discard(w)
                            component.add(w)
                            stack.append(w)
                self._new_component(component)

    # -- updates -----------------------------------------------------------
    def insert(
        self,
        start: np.ndarray,
        end: np.ndarray,
        traj_id: int,
        weight: float = 1.0,
        stamp: float = 0.0,
    ) -> int:
        """Add one segment; returns its slot id."""
        slot, neighbors = self.graph.insert(start, end, traj_id, weight, stamp)
        self._core_neighbors[slot] = {
            int(v) for v in neighbors if int(v) in self._core
        }
        if self.use_weights:
            self._card[slot] = self._cardinality(slot)
            for v in neighbors:
                self._card[int(v)] = self._cardinality(int(v))
        else:
            self._card[slot] = float(neighbors.size + 1)
            for v in neighbors:
                self._card[int(v)] += 1.0
        promoted = [
            u
            for u in [slot, *(int(v) for v in neighbors)]
            if u not in self._core and self._card[u] >= self.min_lns
        ]
        if promoted:
            self._promote(promoted)
        return slot

    def evict(self, slot: int) -> None:
        """Remove one live segment (graph, cardinalities, labels)."""
        was_core = slot in self._core
        core_degree = len(self._core_neighbors.get(slot, ()))
        neighbors = self.graph.evict(slot)
        del self._card[slot]
        del self._core_neighbors[slot]
        if self.use_weights:
            for v in neighbors:
                self._card[int(v)] = self._cardinality(int(v))
        else:
            for v in neighbors:
                self._card[int(v)] -= 1.0
        removals_by_root: Dict[int, List[Tuple[int, int]]] = {}
        if was_core:
            self._core.discard(slot)
            for v in neighbors:
                self._core_neighbors[int(v)].discard(slot)
            root = self._remove_from_component(slot)
            removals_by_root.setdefault(root, []).append((slot, core_degree))
        for v in neighbors:
            v = int(v)
            if v in self._core and self._card[v] < self.min_lns:
                degree = len(self._core_neighbors[v])
                self._core.discard(v)
                for w in self.graph.adjacent(v):
                    self._core_neighbors[w].discard(v)
                root = self._remove_from_component(v)
                removals_by_root.setdefault(root, []).append((v, degree))
        if removals_by_root:
            self._repair_components(removals_by_root)

    # -- labels ------------------------------------------------------------
    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(slots, labels)``: live slot ids ascending and their Figure
        12 labels (>= 0 cluster id in formation order after the Step-3
        filter, -1 noise) — exactly what ``LineSegmentDBSCAN.fit`` on
        the compacted survivors returns."""
        slots = self.store.alive_slots()
        labels = np.full(slots.size, NOISE, dtype=np.int64)
        if slots.size == 0:
            return slots, labels
        roots_in_formation_order = sorted(
            self._comp_members, key=self._comp_min.__getitem__
        )
        rank = {root: k for k, root in enumerate(roots_in_formation_order)}
        core = self._core
        comp_of = self._comp_of
        comp_min = self._comp_min
        core_neighbors = self._core_neighbors
        for position, slot in enumerate(slots.tolist()):
            if slot in core:
                labels[position] = rank[comp_of[slot]]
                continue
            adjacent_cores = core_neighbors[slot]
            if not adjacent_cores:
                continue
            # Figure 12 border rule (module docstring): the last seed
            # whose neighborhood contains the segment wins (line 07
            # overwrites unconditionally); with no adjacent seed, the
            # earliest-formed cluster's expansion claimed it first.
            first_claim = len(rank)
            last_seed = -1
            for neighbor in adjacent_cores:
                root = comp_of[neighbor]
                neighbor_rank = rank[root]
                if neighbor_rank < first_claim:
                    first_claim = neighbor_rank
                if comp_min[root] == neighbor and neighbor_rank > last_seed:
                    last_seed = neighbor_rank
            labels[position] = last_seed if last_seed >= 0 else first_claim
        return slots, self._filter_cardinality(slots, labels, len(rank))

    def _filter_cardinality(
        self, slots: np.ndarray, labels: np.ndarray, n_clusters: int
    ) -> np.ndarray:
        """Figure 12 Step 3: drop clusters with ``|PTR(C)| <
        threshold``, renumber survivors densely in formation order."""
        if n_clusters == 0:
            return labels
        clustered = labels >= 0
        pairs = np.unique(
            np.stack(
                [labels[clustered], self.store.traj_ids[slots[clustered]]]
            ),
            axis=1,
        )
        ptr = np.bincount(pairs[0], minlength=n_clusters)
        keep = ptr >= self.cardinality_threshold
        dense = np.cumsum(keep) - 1
        labels[clustered] = np.where(
            keep[labels[clustered]], dense[labels[clustered]], NOISE
        )
        return labels

    # -- representatives ---------------------------------------------------
    def clusters(self) -> Tuple[List[Cluster], np.ndarray, np.ndarray]:
        """``(clusters, labels, slots)`` over the compacted survivors
        (cluster member indices are positions into the compacted set)."""
        segments, slots = self.store.compact()
        _, labels = self.labels()
        clusters = [
            Cluster(cid, np.flatnonzero(labels == cid), segments)
            for cid in range(int(labels.max()) + 1 if labels.size else 0)
        ]
        return clusters, labels, slots

    def representatives(
        self, config: Optional[RepresentativeConfig] = None
    ) -> List[Cluster]:
        """Current clusters with representative trajectories attached.

        Lazily refreshed: a cluster whose member slots are unchanged
        since the last call reuses the cached Figure 15 sweep; the
        cache drops entries for memberships that no longer exist.
        """
        if config is None:
            config = RepresentativeConfig(min_lns=self.min_lns)
        clusters, labels, slots = self.clusters()
        refreshed: Dict[bytes, np.ndarray] = {}
        for cluster in clusters:
            signature = slots[cluster.member_indices].tobytes()
            representative = self._rep_cache.get(signature)
            if representative is None:
                representative = generate_representative(cluster, config)
            refreshed[signature] = representative
            cluster.representative = representative
        self._rep_cache = refreshed
        return clusters

    # -- compaction --------------------------------------------------------
    def compact_slots(self) -> np.ndarray:
        """Compact the underlying graph's slot store and rename every
        slot held in the derived label state; returns the old -> new
        slot map (-1 = dead).

        The remap is monotone, so component formation order
        (``_comp_min`` minima), the border seed rule, and the Step-3
        filter all see the same relative order — :meth:`labels` returns
        the identical label sequence over the renumbered slots.  The
        representative cache keys on slot signatures and is dropped
        (memberships are unchanged, so sweeps re-run only on the next
        :meth:`representatives` call).
        """
        remap = self.graph.compact_slots()
        self._card = {
            int(remap[slot]): card for slot, card in self._card.items()
        }
        self._core = {int(remap[slot]) for slot in self._core}
        self._core_neighbors = {
            int(remap[slot]): {int(remap[mate]) for mate in mates}
            for slot, mates in self._core_neighbors.items()
        }
        self._comp_of = {
            int(remap[slot]): token for slot, token in self._comp_of.items()
        }
        self._comp_members = {
            token: {int(remap[slot]) for slot in members}
            for token, members in self._comp_members.items()
        }
        self._comp_min = {
            token: int(remap[slot]) for token, slot in self._comp_min.items()
        }
        self._rep_cache.clear()
        return remap

    # -- checkpointing -----------------------------------------------------
    def rebuild_from_graph(self) -> None:
        """Recompute all derived label state (cardinalities, cores,
        components) from the restored graph — one O(V + E) pass; the
        partition it produces is the one incremental maintenance would
        have reached (root tokens are arbitrary, labels are not)."""
        self._card.clear()
        self._core.clear()
        self._core_neighbors.clear()
        self._comp_of.clear()
        self._comp_members.clear()
        self._comp_min.clear()
        alive = self.store.alive_slots().tolist()
        for slot in alive:
            self._card[slot] = self._cardinality(slot)
            if self._card[slot] >= self.min_lns:
                self._core.add(slot)
        for slot in alive:
            self._core_neighbors[slot] = {
                v for v in self.graph.adjacent(slot) if v in self._core
            }
        unvisited = set(self._core)
        while unvisited:
            seed = unvisited.pop()
            component = {seed}
            stack = [seed]
            while stack:
                u = stack.pop()
                for w in self._core_neighbors[u]:
                    if w in unvisited:
                        unvisited.discard(w)
                        component.add(w)
                        stack.append(w)
            self._new_component(component)

    def __repr__(self) -> str:
        return (
            f"OnlineDBSCAN(eps={self.eps}, min_lns={self.min_lns}, "
            f"n_alive={self.store.n_alive}, n_cores={len(self._core)}, "
            f"n_components={len(self._comp_members)})"
        )
