"""Incremental line-segment DBSCAN: Figure 12 labels under updates.

The batch algorithm's output is a *deterministic function of the
ε-graph* — no replay of its scan is needed.  Unwinding Figure 12:

* a segment is **core** iff its ε-cardinality (count, or summed weight
  with the Section 4.2 extension) reaches MinLns; cardinality is fixed
  by the graph, so "previously noise" segments can never expand;
* cores that are ε-neighbors always share a cluster (a core reached by
  an earlier cluster's expansion is itself expanded into it), so the
  clusters' core sets are exactly the **connected components of the
  core subgraph**;
* each cluster is fully expanded before the scan proceeds (Figure 12
  line 09), so clusters *form* in ascending order of their smallest
  core index (their *seed*), and a contested **border** segment
  (non-core with core neighbors) is claimed by the earliest-formed
  component among them — expansion (line 23) never overwrites a
  cluster label — *unless* the border lies in the ε-neighborhood of a
  later-formed cluster's seed: line 07 assigns the whole seed
  neighborhood unconditionally, so the last seed adjacent to the
  border wins;
* Step 3 removes clusters below the trajectory-cardinality threshold
  and the survivors are renumbered densely in formation order.

The state those rules need — core flags, core-neighbor sets, core
components with formation order, and the border/Step-3 derivation — is
the shared :class:`~repro.cluster.labeling.CoreGraphLabeler` (the sweep
engine of :mod:`repro.sweep.engine` advances the same machinery along
the ε axis instead of the time axis).  :class:`OnlineDBSCAN` maintains,
per update: exact cardinalities, core promotion/demotion, merges via
union-by-size and splits by reclustering bounded to the affected
component.  :meth:`labels` evaluates the rules above — and because slot
order equals compacted positional order, the result is *identical* (not
just equivalent up to relabeling) to ``LineSegmentDBSCAN.fit`` on the
surviving segments.  Representative trajectories (Figure 15) are
refreshed lazily: clusters whose membership is unchanged reuse the
cached sweep result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.labeling import CoreGraphLabeler, apply_cardinality_filter
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.model.cluster import Cluster
from repro.representative.sweep import (
    RepresentativeConfig,
    generate_representative,
)
from repro.stream.dynamic_graph import DynamicNeighborGraph


class OnlineDBSCAN:
    """Figure 12 labels maintained under segment insert and evict.

    Parameters mirror :class:`~repro.cluster.dbscan.LineSegmentDBSCAN`
    (eps, MinLns, distance, the Step-3 ``cardinality_threshold``
    defaulting to MinLns, and ``use_weights``); ``dim`` fixes the
    spatial dimensionality of the stream.
    """

    def __init__(
        self,
        eps: float,
        min_lns: float,
        distance: Optional[SegmentDistance] = None,
        cardinality_threshold: Optional[float] = None,
        use_weights: bool = False,
        dim: int = 2,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if min_lns <= 0:
            raise ClusteringError(f"min_lns must be positive, got {min_lns}")
        self.eps = float(eps)
        self.min_lns = float(min_lns)
        self.distance = distance if distance is not None else SegmentDistance()
        self.cardinality_threshold = (
            float(cardinality_threshold)
            if cardinality_threshold is not None
            else float(min_lns)
        )
        self.use_weights = bool(use_weights)
        self.graph = DynamicNeighborGraph(self.eps, self.distance, dim=dim)
        # |N_eps| including self: int count, or the batch-identical
        # weighted sum (recomputed on touch; see _cardinality).
        self._card: Dict[int, float] = {}
        self._labeler = CoreGraphLabeler()
        self._rep_cache: Dict[bytes, np.ndarray] = {}

    # -- cardinality -------------------------------------------------------
    @property
    def store(self):
        return self.graph.store

    def _cardinality(self, slot: int) -> float:
        """Exact |N_eps(slot)| as the batch computes it.

        Weighted sums are *recomputed* from the ascending neighbor row
        (never incrementally adjusted): ``np.sum`` over the same-order
        array is bitwise identical to the batch's, so a sum that lands
        exactly on MinLns classifies identically — float drift from
        repeated add/subtract would not.
        """
        if not self.use_weights:
            return float(len(self.graph.adjacent(slot)) + 1)
        neighbors = self.graph.neighbors_of(slot)
        return float(np.sum(self.store.weights[neighbors]))

    def cardinality(self, slot: int) -> float:
        if slot not in self._card:
            raise ClusteringError(f"slot {slot} is not alive")
        return self._card[slot]

    def is_core(self, slot: int) -> bool:
        return self._labeler.is_core(slot)

    # -- updates -----------------------------------------------------------
    def insert(
        self,
        start: np.ndarray,
        end: np.ndarray,
        traj_id: int,
        weight: float = 1.0,
        stamp: float = 0.0,
    ) -> int:
        """Add one segment; returns its slot id."""
        slot, neighbors = self.graph.insert(start, end, traj_id, weight, stamp)
        self._labeler.track(slot, (int(v) for v in neighbors))
        if self.use_weights:
            self._card[slot] = self._cardinality(slot)
            for v in neighbors:
                self._card[int(v)] = self._cardinality(int(v))
        else:
            self._card[slot] = float(neighbors.size + 1)
            for v in neighbors:
                self._card[int(v)] += 1.0
        promoted = [
            u
            for u in [slot, *(int(v) for v in neighbors)]
            if not self._labeler.is_core(u) and self._card[u] >= self.min_lns
        ]
        if promoted:
            self._labeler.promote(promoted, self.graph.adjacent)
        return slot

    def evict(self, slot: int) -> None:
        """Remove one live segment (graph, cardinalities, labels)."""
        labeler = self._labeler
        was_core = labeler.is_core(slot)
        core_degree = len(labeler.core_neighbors.get(slot, ()))
        neighbors = self.graph.evict(slot)
        del self._card[slot]
        labeler.untrack(slot)
        if self.use_weights:
            for v in neighbors:
                self._card[int(v)] = self._cardinality(int(v))
        else:
            for v in neighbors:
                self._card[int(v)] -= 1.0
        removals_by_root: Dict[int, List[Tuple[int, int]]] = {}
        if was_core:
            labeler.demote(
                slot,
                (int(v) for v in neighbors),
                removals_by_root,
                degree=core_degree,
            )
        for v in neighbors:
            v = int(v)
            if labeler.is_core(v) and self._card[v] < self.min_lns:
                labeler.demote(v, self.graph.adjacent(v), removals_by_root)
        if removals_by_root:
            labeler.repair(removals_by_root)

    # -- labels ------------------------------------------------------------
    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(slots, labels)``: live slot ids ascending and their Figure
        12 labels (>= 0 cluster id in formation order after the Step-3
        filter, -1 noise) — exactly what ``LineSegmentDBSCAN.fit`` on
        the compacted survivors returns."""
        slots = self.store.alive_slots()
        if slots.size == 0:
            return slots, np.empty(0, dtype=np.int64)
        labels, n_clusters = self._labeler.labels_for(slots.tolist())
        return slots, apply_cardinality_filter(
            labels,
            self.store.traj_ids[slots],
            n_clusters,
            self.cardinality_threshold,
        )

    # -- representatives ---------------------------------------------------
    def clusters(self) -> Tuple[List[Cluster], np.ndarray, np.ndarray]:
        """``(clusters, labels, slots)`` over the compacted survivors
        (cluster member indices are positions into the compacted set)."""
        segments, slots = self.store.compact()
        _, labels = self.labels()
        clusters = [
            Cluster(cid, np.flatnonzero(labels == cid), segments)
            for cid in range(int(labels.max()) + 1 if labels.size else 0)
        ]
        return clusters, labels, slots

    def representatives(
        self, config: Optional[RepresentativeConfig] = None
    ) -> List[Cluster]:
        """Current clusters with representative trajectories attached.

        Lazily refreshed: a cluster whose member slots are unchanged
        since the last call reuses the cached Figure 15 sweep; the
        cache drops entries for memberships that no longer exist.
        """
        if config is None:
            config = RepresentativeConfig(min_lns=self.min_lns)
        clusters, labels, slots = self.clusters()
        refreshed: Dict[bytes, np.ndarray] = {}
        for cluster in clusters:
            signature = slots[cluster.member_indices].tobytes()
            representative = self._rep_cache.get(signature)
            if representative is None:
                representative = generate_representative(cluster, config)
            refreshed[signature] = representative
            cluster.representative = representative
        self._rep_cache = refreshed
        return clusters

    # -- compaction --------------------------------------------------------
    def compact_slots(self) -> np.ndarray:
        """Compact the underlying graph's slot store and rename every
        slot held in the derived label state; returns the old -> new
        slot map (-1 = dead).

        The remap is monotone, so component formation order, the border
        seed rule, and the Step-3 filter all see the same relative
        order — :meth:`labels` returns the identical label sequence
        over the renumbered slots.  The representative cache keys on
        slot signatures and is dropped (memberships are unchanged, so
        sweeps re-run only on the next :meth:`representatives` call).
        """
        remap = self.graph.compact_slots()
        self._card = {
            int(remap[slot]): card for slot, card in self._card.items()
        }
        self._labeler.remap_ids(remap)
        self._rep_cache.clear()
        return remap

    # -- checkpointing -----------------------------------------------------
    def rebuild_from_graph(self) -> None:
        """Recompute all derived label state (cardinalities, cores,
        components) from the restored graph — one O(V + E) pass; the
        partition it produces is the one incremental maintenance would
        have reached (root tokens are arbitrary, labels are not)."""
        self._card.clear()
        alive = self.store.alive_slots().tolist()
        for slot in alive:
            self._card[slot] = self._cardinality(slot)
        self._labeler.rebuild(
            alive,
            self.graph.adjacent,
            (slot for slot in alive if self._card[slot] >= self.min_lns),
        )

    def __repr__(self) -> str:
        return (
            f"OnlineDBSCAN(eps={self.eps}, min_lns={self.min_lns}, "
            f"n_alive={self.store.n_alive}, "
            f"n_cores={self._labeler.n_cores}, "
            f"n_components={self._labeler.n_components})"
        )
