"""Incremental line-segment DBSCAN: Figure 12 labels under updates.

The batch algorithm's output is a *deterministic function of the
ε-graph* — no replay of its scan is needed.  Unwinding Figure 12:

* a segment is **core** iff its ε-cardinality (count, or summed weight
  with the Section 4.2 extension) reaches MinLns; cardinality is fixed
  by the graph, so "previously noise" segments can never expand;
* cores that are ε-neighbors always share a cluster (a core reached by
  an earlier cluster's expansion is itself expanded into it), so the
  clusters' core sets are exactly the **connected components of the
  core subgraph**;
* each cluster is fully expanded before the scan proceeds (Figure 12
  line 09), so clusters *form* in ascending order of their smallest
  core index (their *seed*), and a contested **border** segment
  (non-core with core neighbors) is claimed by the earliest-formed
  component among them — expansion (line 23) never overwrites a
  cluster label — *unless* the border lies in the ε-neighborhood of a
  later-formed cluster's seed: line 07 assigns the whole seed
  neighborhood unconditionally, so the last seed adjacent to the
  border wins;
* Step 3 removes clusters below the trajectory-cardinality threshold
  and the survivors are renumbered densely in formation order.

The state those rules need — core flags, core-neighbor sets, core
components with formation order, and the border/Step-3 derivation — is
the shared :class:`~repro.cluster.labeling.CoreGraphLabeler` (the sweep
engine of :mod:`repro.sweep.engine` advances the same machinery along
the ε axis instead of the time axis).  :class:`OnlineDBSCAN` maintains,
per update: exact cardinalities, core promotion/demotion, merges via
union-by-size and splits by reclustering bounded to the affected
component.  :meth:`labels` evaluates the rules above — and because slot
order equals compacted positional order, the result is *identical* (not
just equivalent up to relabeling) to ``LineSegmentDBSCAN.fit`` on the
surviving segments.  Representative trajectories (Figure 15) are
refreshed lazily: clusters whose membership is unchanged reuse the
cached sweep result.

Incremental diffs
-----------------

On top of the batch-identical derivation, the class maintains a
*stable-label view*: every live slot's current assignment in component
tokens (which survive updates) rather than dense ranks (which do not).
Each update records the slots whose assignment **could** have changed —
the inserted/evicted slot, promotions and demotions with their graph
neighborhoods, members moved by a union or split, and the *watchers*
(borders adjacent to a component) of any component whose identity or
formation key moved — by draining the labeler's event journal.
:meth:`flush_diff` re-derives exactly those slots, updates per-cluster
distinct-trajectory counts for the Step-3 visibility flips, and emits a
:class:`~repro.stream.view.LabelDiff` whose cost is O(touched), not
O(live).  ``last_flush_touched`` exposes that count so tests and the
shard benchmark can pin the complexity claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.labeling import CoreGraphLabeler, apply_cardinality_filter
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.model.cluster import NOISE, Cluster
from repro.representative.sweep import (
    RepresentativeConfig,
    generate_representative,
)
from repro.stream.dynamic_graph import DynamicNeighborGraph
from repro.stream.view import LabelDiff, LabelView


class OnlineDBSCAN:
    """Figure 12 labels maintained under segment insert and evict.

    Parameters mirror :class:`~repro.cluster.dbscan.LineSegmentDBSCAN`
    (eps, MinLns, distance, the Step-3 ``cardinality_threshold``
    defaulting to MinLns, and ``use_weights``); ``dim`` fixes the
    spatial dimensionality of the stream.  ``graph`` substitutes a
    caller-owned :class:`DynamicNeighborGraph` (subclasses included —
    the shard merger feeds one whose edges partly arrive over the
    wire); it must carry the same eps and distance.
    """

    def __init__(
        self,
        eps: float,
        min_lns: float,
        distance: Optional[SegmentDistance] = None,
        cardinality_threshold: Optional[float] = None,
        use_weights: bool = False,
        dim: int = 2,
        graph: Optional[DynamicNeighborGraph] = None,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        if min_lns <= 0:
            raise ClusteringError(f"min_lns must be positive, got {min_lns}")
        self.eps = float(eps)
        self.min_lns = float(min_lns)
        self.distance = distance if distance is not None else SegmentDistance()
        self.cardinality_threshold = (
            float(cardinality_threshold)
            if cardinality_threshold is not None
            else float(min_lns)
        )
        self.use_weights = bool(use_weights)
        if graph is None:
            graph = DynamicNeighborGraph(self.eps, self.distance, dim=dim)
        elif graph.eps != self.eps:
            raise ClusteringError(
                f"supplied graph has eps={graph.eps}, clusterer wants "
                f"{self.eps}"
            )
        self.graph = graph
        # |N_eps| including self: int count, or the batch-identical
        # weighted sum (recomputed on touch; see _cardinality).
        self._card: Dict[int, float] = {}
        self._labeler = CoreGraphLabeler()
        self._labeler.journal = []
        self._rep_cache: Dict[bytes, np.ndarray] = {}
        # -- stable-label view (module docstring, "Incremental diffs") --
        # Last flushed assignment: slot -> component token or NOISE.
        self._assign: Dict[int, int] = {}
        # token -> assigned slots (cores and borders) and their
        # distinct-trajectory counts ({traj_id: n_slots}); len() of the
        # latter is |PTR(C)| for the Step-3 visibility test.
        self._members: Dict[int, Set[int]] = {}
        self._traj_counts: Dict[int, Dict[int, int]] = {}
        # Tokens currently passing Step 3.
        self._visible: Set[int] = set()
        # Border watch index: a border depends on *every* adjacent
        # component (its claim may flip when any of their formation keys
        # move), so token -> watching borders and the reverse.
        self._watchers: Dict[int, Set[int]] = {}
        self._watching: Dict[int, Set[int]] = {}
        # Per-flush accumulators.
        self._touched: Set[int] = set()
        self._added: Set[int] = set()
        self._removed: Dict[int, Optional[int]] = {}
        self._touched_tokens: Set[int] = set()
        self._fresh: Set[int] = set()
        self._retired: List[int] = []
        self._merges: List[Tuple[int, int]] = []
        self._splits: List[Tuple[int, Tuple[int, ...]]] = []
        self._redirect: Dict[int, int] = {}
        #: Bumped by every :meth:`flush_diff`; lets lazy consumers tell
        #: whether a cached dense view is still current.
        self.view_version = 0
        #: Slots re-derived by the last flush — the O(delta) witness.
        self.last_flush_touched = 0

    # -- cardinality -------------------------------------------------------
    @property
    def store(self):
        return self.graph.store

    def _cardinality(self, slot: int) -> float:
        """Exact |N_eps(slot)| as the batch computes it.

        Weighted sums are *recomputed* from the ascending neighbor row
        (never incrementally adjusted): ``np.sum`` over the same-order
        array is bitwise identical to the batch's, so a sum that lands
        exactly on MinLns classifies identically — float drift from
        repeated add/subtract would not.
        """
        if not self.use_weights:
            return float(len(self.graph.adjacent(slot)) + 1)
        neighbors = self.graph.neighbors_of(slot)
        return float(np.sum(self.store.weights[neighbors]))

    def cardinality(self, slot: int) -> float:
        if slot not in self._card:
            raise ClusteringError(f"slot {slot} is not alive")
        return self._card[slot]

    def is_core(self, slot: int) -> bool:
        return self._labeler.is_core(slot)

    # -- updates -----------------------------------------------------------
    def insert(
        self,
        start: np.ndarray,
        end: np.ndarray,
        traj_id: int,
        weight: float = 1.0,
        stamp: float = 0.0,
    ) -> int:
        """Add one segment; returns its slot id."""
        slot, neighbors = self.graph.insert(start, end, traj_id, weight, stamp)
        self._labeler.track(slot, (int(v) for v in neighbors))
        self._register(slot, neighbors)
        return slot

    def insert_batch(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        traj_ids: np.ndarray,
        weights: Optional[np.ndarray] = None,
        stamps: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Insert many segments through one vectorized candidate join.

        Label state afterwards is *identical* to sequential
        :meth:`insert` calls in array order: each slot's insertion-time
        neighbor set (mates with a smaller slot id) is what sequential
        insertion would have seen, slots are registered in ascending
        order, and :meth:`_register` masks weighted sums to that same
        prefix.  Tracking all slots up front is safe because a
        promotion during an earlier slot's registration pushes itself
        into later slots' core-neighbor sets via the adjacency
        callback — the same end state sequential ``track`` reaches.
        """
        inserted = self.graph.insert_batch(
            starts, ends, traj_ids, weights, stamps
        )
        self.register_inserted(inserted)
        return [slot for slot, _ in inserted]

    def register_inserted(
        self, inserted: Sequence[Tuple[int, np.ndarray]]
    ) -> None:
        """Label bookkeeping for slots the caller already placed in the
        owned graph — the shard merger path, where edges partly arrive
        over the wire.  *inserted* is ``(slot, mates)`` in ascending
        slot order with each slot's insertion-time proper neighbors
        ascending, exactly what
        :meth:`DynamicNeighborGraph.insert_batch` (or the merged
        graph's batched insert) returns; the resulting state matches
        :meth:`insert_batch` over the same segments."""
        labeler = self._labeler
        for slot, mates in inserted:
            labeler.track(slot, (int(v) for v in mates))
        for slot, mates in inserted:
            self._register(slot, mates)

    def _register(self, slot: int, mates: np.ndarray) -> None:
        """Cardinality, promotion, and diff bookkeeping for a newly
        inserted slot whose insertion-time neighbors are *mates*
        (ascending).  In batch mode later batch slots are already in
        the graph, so weighted sums mask neighbor rows to ids <= slot —
        exactly the rows sequential insertion would have summed."""
        mates = [int(v) for v in mates]
        if self.use_weights:
            weights = self.store.weights
            for u in (slot, *mates):
                row = self.graph.neighbors_of(u)
                self._card[u] = float(np.sum(weights[row[row <= slot]]))
        else:
            self._card[slot] = float(len(mates) + 1)
            for v in mates:
                self._card[v] += 1.0
        labeler = self._labeler
        promoted = [
            u
            for u in (slot, *mates)
            if not labeler.is_core(u) and self._card[u] >= self.min_lns
        ]
        self._added.add(slot)
        self._touched.add(slot)
        if promoted:
            labeler.promote(promoted, self.graph.adjacent)
            touched = self._touched
            for u in promoted:
                touched.add(u)
                touched.update(int(w) for w in self.graph.adjacent(u))
        self._drain_journal()

    def evict(self, slot: int) -> None:
        """Remove one live segment (graph, cardinalities, labels)."""
        labeler = self._labeler
        # The transition the consumer saw last: None if the slot was
        # never flushed (inserted and evicted within one update).
        if slot in self._added:
            old_visible: Optional[int] = None
        else:
            old_visible = self._visible_label(slot)
        was_core = labeler.is_core(slot)
        core_degree = len(labeler.core_neighbors.get(slot, ()))
        neighbors = self.graph.evict(slot)
        del self._card[slot]
        labeler.untrack(slot)
        if self.use_weights:
            for v in neighbors:
                self._card[int(v)] = self._cardinality(int(v))
        else:
            for v in neighbors:
                self._card[int(v)] -= 1.0
        touched = self._touched
        removals_by_root: Dict[int, List[Tuple[int, int]]] = {}
        if was_core:
            labeler.demote(
                slot,
                (int(v) for v in neighbors),
                removals_by_root,
                degree=core_degree,
            )
            touched.update(int(v) for v in neighbors)
        for v in neighbors:
            v = int(v)
            if labeler.is_core(v) and self._card[v] < self.min_lns:
                adjacent_v = [int(w) for w in self.graph.adjacent(v)]
                labeler.demote(v, adjacent_v, removals_by_root)
                touched.add(v)
                touched.update(adjacent_v)
        if removals_by_root:
            labeler.repair(removals_by_root)
        self._settle_retraction(slot, old_visible)
        self._drain_journal()

    # -- stable-label view maintenance -------------------------------------
    def _visible_label(self, slot: int) -> int:
        """The slot's label as the last flush reported it."""
        token = self._assign.get(slot, NOISE)
        return token if token in self._visible else NOISE

    def _settle_retraction(self, slot: int, old_visible: Optional[int]) -> None:
        if slot in self._added:
            self._added.discard(slot)
        else:
            self._removed[slot] = old_visible
        self._touched.discard(slot)
        token = self._assign.pop(slot, None)
        if token is not None and token >= 0:
            self._unassign(slot, token)
        self._unwatch(slot)

    def _assign_to(self, slot: int, token: int) -> None:
        self._members.setdefault(token, set()).add(slot)
        counts = self._traj_counts.setdefault(token, {})
        traj = int(self.store.traj_ids[slot])
        counts[traj] = counts.get(traj, 0) + 1
        self._touched_tokens.add(token)

    def _unassign(self, slot: int, token: int) -> None:
        members = self._members.get(token)
        if members is not None:
            members.discard(slot)
            if not members:
                del self._members[token]
        counts = self._traj_counts.get(token)
        if counts is not None:
            traj = int(self.store.traj_ids[slot])
            remaining = counts[traj] - 1
            if remaining:
                counts[traj] = remaining
            else:
                del counts[traj]
                if not counts:
                    del self._traj_counts[token]
        self._touched_tokens.add(token)

    def _rewatch(self, slot: int, roots: Set[int]) -> None:
        old = self._watching.get(slot)
        if old == roots:
            return
        fresh_tokens = roots if old is None else roots - old
        if old:
            for token in old - roots:
                watchers = self._watchers.get(token)
                if watchers is not None:
                    watchers.discard(slot)
                    if not watchers:
                        del self._watchers[token]
        for token in fresh_tokens:
            self._watchers.setdefault(token, set()).add(slot)
        self._watching[slot] = roots

    def _unwatch(self, slot: int) -> None:
        old = self._watching.pop(slot, None)
        if old:
            for token in old:
                watchers = self._watchers.get(token)
                if watchers is not None:
                    watchers.discard(slot)
                    if not watchers:
                        del self._watchers[token]

    def _retire(self, token: int) -> bool:
        """Mark *token* gone; returns True if a consumer ever saw it
        (i.e. it predates this flush)."""
        internal = token in self._fresh
        if internal:
            self._fresh.discard(token)
        else:
            self._retired.append(token)
        self._touched_tokens.add(token)
        return not internal

    def _drain_journal(self) -> None:
        """Translate the labeler's component events into the touched
        sets the next :meth:`flush_diff` re-derives."""
        journal = self._labeler.journal
        if not journal:
            return
        touched = self._touched
        watchers = self._watchers
        for event in journal:
            kind = event[0]
            if kind == "new":
                self._fresh.add(event[1])
                self._touched_tokens.add(event[1])
            elif kind == "union":
                _, absorbed, survivor, moved, min_changed = event
                touched.update(moved)
                self._touched_tokens.add(survivor)
                moved_watchers = watchers.pop(absorbed, None)
                if moved_watchers:
                    touched.update(moved_watchers)
                if min_changed:
                    current = watchers.get(survivor)
                    if current:
                        touched.update(current)
                if self._retire(absorbed):
                    self._merges.append((absorbed, survivor))
                self._redirect[absorbed] = survivor
            elif kind == "keep":
                _, token, min_changed = event
                self._touched_tokens.add(token)
                if min_changed:
                    current = watchers.get(token)
                    if current:
                        touched.update(current)
            elif kind == "split":
                _, root, parts = event
                for part in parts:
                    touched.update(self._labeler.component_members(part))
                root_watchers = watchers.pop(root, None)
                if root_watchers:
                    touched.update(root_watchers)
                if self._retire(root):
                    self._splits.append((root, parts))
            else:  # "drop"
                token = event[1]
                root_watchers = watchers.pop(token, None)
                if root_watchers:
                    touched.update(root_watchers)
                self._retire(token)
        journal.clear()

    def _derive(self, slot: int) -> int:
        """Current stable assignment of one slot (the Figure 12 rules
        of :meth:`CoreGraphLabeler.labels_for`, expressed in component
        tokens: formation *rank* order equals formation *key* order),
        refreshing the border watch index as a side effect."""
        labeler = self._labeler
        if labeler.is_core(slot):
            self._unwatch(slot)
            return labeler.component_of(slot)
        adjacent_cores = labeler.core_neighbors.get(slot)
        if not adjacent_cores:
            self._unwatch(slot)
            return NOISE
        comp_of = labeler._comp_of
        comp_min = labeler._comp_min
        roots: Set[int] = set()
        first_claim = NOISE
        first_min: Optional[int] = None
        last_seed = NOISE
        last_min = -1
        for neighbor in adjacent_cores:
            root = comp_of[neighbor]
            minimum = comp_min[root]
            roots.add(root)
            if first_min is None or minimum < first_min:
                first_min = minimum
                first_claim = root
            if minimum == neighbor and minimum > last_min:
                last_min = minimum
                last_seed = root
        self._rewatch(slot, roots)
        return last_seed if last_min >= 0 else first_claim

    def flush_diff(self) -> LabelDiff:
        """Re-derive the touched slots, apply the Step-3 visibility
        flips, and return the stable-label diff since the last flush.
        Cost is O(touched + flipped-cluster members), independent of
        the number of live slots."""
        labeler = self._labeler
        card = self._card
        visible = self._visible
        self.last_flush_touched = len(self._touched) + len(self._removed)
        # 1) new assignments for the touched live slots (ascending for
        # a deterministic diff).
        pending: Dict[int, Tuple[Optional[int], int]] = {}
        for slot in sorted(self._touched):
            if slot not in card:
                continue  # evicted after being touched; in _removed
            old_token = self._assign.get(slot)
            new_token = self._derive(slot)
            if old_token is None or old_token != new_token:
                if old_token is not None and old_token >= 0:
                    self._unassign(slot, old_token)
                if new_token >= 0:
                    self._assign_to(slot, new_token)
                self._assign[slot] = new_token
                pending[slot] = (old_token, new_token)
        # 2) the labels those slots had *before* visibility moves.
        old_vis: Dict[int, Optional[int]] = {}
        for slot, (old_token, _) in pending.items():
            if old_token is None:
                old_vis[slot] = None
            else:
                old_vis[slot] = old_token if old_token in visible else NOISE
        # 3) Step-3 visibility over the touched tokens (distinct
        # trajectory count vs threshold, as apply_cardinality_filter).
        shown: List[int] = []
        hidden: List[int] = []
        threshold = self.cardinality_threshold
        for token in sorted(self._touched_tokens):
            if token not in labeler._comp_members:
                # Retired: conveyed by merges/splits/retired, the
                # members' own transitions, not a visibility flip.
                visible.discard(token)
                continue
            now = len(self._traj_counts.get(token, ())) >= threshold
            if now and token not in visible:
                visible.add(token)
                shown.append(token)
            elif not now and token in visible:
                visible.discard(token)
                hidden.append(token)
        # 4) per-slot transitions.
        changed: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        for token in hidden:
            for slot in self._members.get(token, ()):
                if slot not in pending:
                    changed[slot] = (token, NOISE)
        for token in shown:
            for slot in self._members.get(token, ()):
                if slot not in pending:
                    changed[slot] = (NOISE, token)
        for slot, (old_token, new_token) in pending.items():
            old = old_vis[slot]
            new = new_token if new_token in visible else NOISE
            if old is None or old != new:
                changed[slot] = (old, new)
        for slot, old in self._removed.items():
            changed[slot] = (old, None)
        # 5) formation keys for the touched visible clusters.
        minima = {
            token: labeler._comp_min[token]
            for token in self._touched_tokens
            if token in visible
        }
        # 6) cluster-identity events, with merge chains through tokens
        # the consumer never saw resolved to their final survivor.
        redirect = self._redirect

        def final(token: int) -> int:
            while token in redirect:
                token = redirect[token]
            return token

        merges = tuple(
            (absorbed, final(survivor)) for absorbed, survivor in self._merges
        )
        splits = []
        for root, parts in self._splits:
            resolved = tuple(dict.fromkeys(final(part) for part in parts))
            if len(resolved) >= 2:
                splits.append((root, resolved))
        retired = tuple(self._retired)
        for token in retired:
            self._members.pop(token, None)
            self._traj_counts.pop(token, None)
        diff = LabelDiff(
            changed=changed,
            merges=merges,
            splits=tuple(splits),
            shown=tuple(shown),
            hidden=tuple(hidden),
            minima=minima,
            retired=retired,
            touched=self.last_flush_touched,
        )
        self._touched.clear()
        self._added.clear()
        self._removed.clear()
        self._touched_tokens.clear()
        self._fresh.clear()
        self._retired.clear()
        self._merges.clear()
        self._splits.clear()
        self._redirect.clear()
        self.view_version += 1
        return diff

    # -- labels ------------------------------------------------------------
    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(slots, labels)``: live slot ids ascending and their Figure
        12 labels (>= 0 cluster id in formation order after the Step-3
        filter, -1 noise) — exactly what ``LineSegmentDBSCAN.fit`` on
        the compacted survivors returns."""
        slots = self.store.alive_slots()
        if slots.size == 0:
            return slots, np.empty(0, dtype=np.int64)
        labels, n_clusters = self._labeler.labels_for(slots.tolist())
        return slots, apply_cardinality_filter(
            labels,
            self.store.traj_ids[slots],
            n_clusters,
            self.cardinality_threshold,
        )

    # -- representatives ---------------------------------------------------
    def clusters(self) -> Tuple[List[Cluster], np.ndarray, np.ndarray]:
        """``(clusters, labels, slots)`` over the compacted survivors
        (cluster member indices are positions into the compacted set)."""
        segments, slots = self.store.compact()
        _, labels = self.labels()
        clusters = [
            Cluster(cid, np.flatnonzero(labels == cid), segments)
            for cid in range(int(labels.max()) + 1 if labels.size else 0)
        ]
        return clusters, labels, slots

    def representatives(
        self, config: Optional[RepresentativeConfig] = None
    ) -> List[Cluster]:
        """Current clusters with representative trajectories attached.

        Lazily refreshed: a cluster whose member slots are unchanged
        since the last call reuses the cached Figure 15 sweep; the
        cache drops entries for memberships that no longer exist.
        """
        if config is None:
            config = RepresentativeConfig(min_lns=self.min_lns)
        clusters, labels, slots = self.clusters()
        refreshed: Dict[bytes, np.ndarray] = {}
        for cluster in clusters:
            signature = slots[cluster.member_indices].tobytes()
            representative = self._rep_cache.get(signature)
            if representative is None:
                representative = generate_representative(cluster, config)
            refreshed[signature] = representative
            cluster.representative = representative
        self._rep_cache = refreshed
        return clusters

    # -- compaction --------------------------------------------------------
    def compact_slots(self) -> np.ndarray:
        """Compact the underlying graph's slot store and rename every
        slot held in the derived label state; returns the old -> new
        slot map (-1 = dead).

        The remap is monotone, so component formation order, the border
        seed rule, and the Step-3 filter all see the same relative
        order — :meth:`labels` returns the identical label sequence
        over the renumbered slots.  The representative cache keys on
        slot signatures and is dropped (memberships are unchanged, so
        sweeps re-run only on the next :meth:`representatives` call).

        Pending diff state is flushed first: retraction entries key on
        old slot ids of dead slots, which a remap cannot rename.
        """
        if self._touched or self._removed or self._touched_tokens:
            self.flush_diff()
        remap = self.graph.compact_slots()
        self._card = {
            int(remap[slot]): card for slot, card in self._card.items()
        }
        self._labeler.remap_ids(remap)
        self._assign = {
            int(remap[slot]): token for slot, token in self._assign.items()
        }
        self._members = {
            token: {int(remap[slot]) for slot in members}
            for token, members in self._members.items()
        }
        self._watching = {
            int(remap[slot]): roots for slot, roots in self._watching.items()
        }
        self._watchers = {
            token: {int(remap[slot]) for slot in watchers}
            for token, watchers in self._watchers.items()
        }
        self._rep_cache.clear()
        return remap

    # -- checkpointing -----------------------------------------------------
    def rebuild_from_graph(self) -> None:
        """Recompute all derived label state (cardinalities, cores,
        components, the stable-label view) from the restored graph —
        one O(V + E) pass; the partition it produces is the one
        incremental maintenance would have reached (root tokens are
        arbitrary until :meth:`adopt_tokens`, labels are not)."""
        self._card.clear()
        alive = self.store.alive_slots().tolist()
        for slot in alive:
            self._card[slot] = self._cardinality(slot)
        self._labeler.rebuild(
            alive,
            self.graph.adjacent,
            (slot for slot in alive if self._card[slot] >= self.min_lns),
        )
        self._reset_view()

    def export_tokens(self) -> Tuple[np.ndarray, int]:
        """``(pairs, next_token)``: each row of *pairs* is ``(token,
        anchor)`` where the anchor is the component's smallest core
        member — enough for a rebuild to re-adopt the same stable
        cluster ids and continue minting where this session stopped."""
        labeler = self._labeler
        pairs = np.array(
            sorted(labeler._comp_min.items()), dtype=np.int64
        ).reshape(-1, 2)
        return pairs, labeler._next_comp

    def adopt_tokens(self, pairs: np.ndarray, next_token: int) -> None:
        """Rename the rebuilt components to checkpointed tokens (each
        anchor core member identifies its component) and restore the
        mint counter: token evolution after restore then continues the
        original session's exactly, because promotion unions and
        repair seeds are processed in canonical order."""
        labeler = self._labeler
        mapping: Dict[int, int] = {}
        for token, anchor in np.asarray(pairs, dtype=np.int64).reshape(-1, 2):
            mapping[labeler._comp_of[int(anchor)]] = int(token)
        if len(mapping) != len(labeler._comp_members):
            raise ClusteringError(
                f"checkpoint names {len(mapping)} components, rebuild "
                f"produced {len(labeler._comp_members)}"
            )
        labeler._comp_of = {
            uid: mapping[token] for uid, token in labeler._comp_of.items()
        }
        labeler._comp_members = {
            mapping[token]: members
            for token, members in labeler._comp_members.items()
        }
        labeler._comp_min = {
            mapping[token]: minimum
            for token, minimum in labeler._comp_min.items()
        }
        labeler._next_comp = int(next_token)
        self._reset_view()

    def snapshot_view(self) -> LabelView:
        """A fresh :class:`LabelView` equal to what folding every diff
        emitted so far would have produced (checkpoint restores start
        their consumers here instead of replaying history)."""
        view = LabelView()
        labeler = self._labeler
        for slot, token in self._assign.items():
            label = token if token in self._visible else -1
            view._labels[slot] = label
            if label >= 0:
                view._counts[label] = view._counts.get(label, 0) + 1
        for token in self._visible:
            view._minima[token] = labeler._comp_min[token]
        return view

    def _reset_view(self) -> None:
        """Recompute the stable-label view from the labeler — one
        O(live) pass, used only after a wholesale rebuild."""
        self._assign.clear()
        self._members.clear()
        self._traj_counts.clear()
        self._visible.clear()
        self._watching.clear()
        self._watchers.clear()
        self._touched.clear()
        self._added.clear()
        self._removed.clear()
        self._touched_tokens.clear()
        self._fresh.clear()
        self._retired.clear()
        self._merges.clear()
        self._splits.clear()
        self._redirect.clear()
        if self._labeler.journal is not None:
            self._labeler.journal.clear()
        for slot in self.store.alive_slots().tolist():
            token = self._derive(slot)
            if token >= 0:
                self._assign_to(slot, token)
            self._assign[slot] = token
        self._touched_tokens.clear()
        threshold = self.cardinality_threshold
        for token, counts in self._traj_counts.items():
            if len(counts) >= threshold:
                self._visible.add(token)

    def __repr__(self) -> str:
        return (
            f"OnlineDBSCAN(eps={self.eps}, min_lns={self.min_lns}, "
            f"n_alive={self.store.n_alive}, "
            f"n_cores={self._labeler.n_cores}, "
            f"n_components={self._labeler.n_components})"
        )
