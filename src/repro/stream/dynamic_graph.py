"""Dynamic ε-neighborhood graph: the PR-1 batch relation under updates.

:class:`StreamSegmentStore` is the streaming counterpart of
:class:`~repro.model.segmentset.SegmentSet`: an append-only columnar
store with an alive mask.  Slots are never reused — a slot id is a
stable, monotonically increasing identity, so the *relative order* of
any two live slots equals their positional order in a compacted
:class:`SegmentSet`.  That invariant is what keeps the equal-length
tie-break of the distance kernel (smaller id acts as ``Li``) — and
therefore every computed distance — bitwise identical between the
online graph and a batch rebuild on the surviving segments.

:class:`DynamicNeighborGraph` maintains the ε-neighborhood relation
under segment insert and evict:

* **insert** — the new segment is registered in a
  :class:`~repro.index.grid.SegmentGrid` over the store; its candidate
  mates come from the same expanded-bbox window (same
  :func:`~repro.cluster.neighbor_graph.candidate_radius`, same
  subnormal floor) the batch builder uses, and the surviving edges are
  filtered by the same symmetric pair kernel
  (:meth:`SegmentDistance.pairs <repro.distance.weighted.SegmentDistance.pairs>`).
  A zero ``w_perp``/``w_par`` voids the geometric prefilter exactly as
  documented for the batch builder, and the candidate set degrades to
  all live slots.
* **evict** — the segment leaves the grid and its adjacency rows are
  unlinked; neighbors are reported so label maintenance can react.

Because candidate generation is a superset in both regimes and the
kernel is shared, ``neighbors_of`` answers are bitwise identical to a
fresh :class:`~repro.cluster.neighbor_graph.NeighborGraph` built over
the compacted survivors — the property tests assert exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.neighbor_graph import candidate_radius
from repro.distance.weighted import SegmentDistance
from repro.exceptions import ClusteringError
from repro.index.grid import SegmentGrid
from repro.model.segmentset import SegmentSet

#: Initial slot capacity of a :class:`StreamSegmentStore`.
_INITIAL_CAPACITY = 64


class StreamSegmentStore:
    """Append-only columnar segment store with an alive mask.

    Exposes the same column attributes the vectorized distance kernels
    read (``starts``, ``ends``, ``traj_ids``, ``weights``, ``lengths``)
    trimmed to the allocated slot count, so a
    :class:`~repro.distance.weighted.SegmentDistance` treats it exactly
    like a :class:`SegmentSet`.  Dead slots keep their (frozen)
    coordinates; they are simply never offered as candidates.
    """

    def __init__(self, dim: int = 2):
        if dim < 1:
            raise ClusteringError(f"dim must be positive, got {dim}")
        self._dim = int(dim)
        self._capacity = _INITIAL_CAPACITY
        self._starts = np.empty((self._capacity, dim), dtype=np.float64)
        self._ends = np.empty((self._capacity, dim), dtype=np.float64)
        self._traj_ids = np.empty(self._capacity, dtype=np.int64)
        self._weights = np.empty(self._capacity, dtype=np.float64)
        self._stamps = np.empty(self._capacity, dtype=np.float64)
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._n = 0
        self._n_alive = 0

    # -- column views (duck-typed SegmentSet) ------------------------------
    def __len__(self) -> int:
        """Allocated slots (dead included) — the index space."""
        return self._n

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def starts(self) -> np.ndarray:
        return self._starts[: self._n]

    @property
    def ends(self) -> np.ndarray:
        return self._ends[: self._n]

    @property
    def traj_ids(self) -> np.ndarray:
        return self._traj_ids[: self._n]

    @property
    def weights(self) -> np.ndarray:
        return self._weights[: self._n]

    @property
    def stamps(self) -> np.ndarray:
        return self._stamps[: self._n]

    @property
    def lengths(self) -> np.ndarray:
        return np.linalg.norm(self.ends - self.starts, axis=1)

    @property
    def alive_mask(self) -> np.ndarray:
        return self._alive[: self._n]

    @property
    def n_alive(self) -> int:
        return self._n_alive

    def alive_slots(self) -> np.ndarray:
        """Live slot ids, ascending."""
        return np.flatnonzero(self._alive[: self._n])

    def is_alive(self, slot: int) -> bool:
        return bool(0 <= slot < self._n and self._alive[slot])

    # -- mutation ----------------------------------------------------------
    def _grow(self) -> None:
        self._capacity *= 2
        for name in ("_starts", "_ends"):
            grown = np.empty((self._capacity, self._dim), dtype=np.float64)
            grown[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, grown)
        for name, dtype in (
            ("_traj_ids", np.int64),
            ("_weights", np.float64),
            ("_stamps", np.float64),
        ):
            grown = np.empty(self._capacity, dtype=dtype)
            grown[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, grown)
        grown_alive = np.zeros(self._capacity, dtype=bool)
        grown_alive[: self._n] = self._alive[: self._n]
        self._alive = grown_alive

    def append(
        self,
        start: np.ndarray,
        end: np.ndarray,
        traj_id: int,
        weight: float = 1.0,
        stamp: float = 0.0,
    ) -> int:
        """Allocate a live slot; returns its (stable) id."""
        start = np.asarray(start, dtype=np.float64)
        end = np.asarray(end, dtype=np.float64)
        if start.shape != (self._dim,) or end.shape != (self._dim,):
            raise ClusteringError(
                f"endpoints must be ({self._dim},) vectors, got "
                f"{start.shape} and {end.shape}"
            )
        if weight <= 0:
            raise ClusteringError(f"segment weight must be positive, got {weight}")
        if self._n == self._capacity:
            self._grow()
        slot = self._n
        self._starts[slot] = start
        self._ends[slot] = end
        self._traj_ids[slot] = int(traj_id)
        self._weights[slot] = float(weight)
        self._stamps[slot] = float(stamp)
        self._alive[slot] = True
        self._n += 1
        self._n_alive += 1
        return slot

    def kill(self, slot: int) -> None:
        if not self.is_alive(slot):
            raise ClusteringError(f"slot {slot} is not alive")
        self._alive[slot] = False
        self._n_alive -= 1

    def compact_slots(self) -> np.ndarray:
        """Reclaim dead slots: renumber the live slots ``0 ..
        n_alive - 1`` in ascending old-slot order and shrink the
        backing arrays.

        The remap is *monotone* — live slots keep their relative order
        — which is the invariant everything downstream relies on (see
        the class docstring), so distances and labels are bitwise
        unaffected; only the ids change.  Returns an ``(old_n,)``
        array mapping each old slot to its new id (-1 for dead slots).
        Callers holding slot ids (grids, adjacency, label state) must
        remap them; :meth:`DynamicNeighborGraph.compact_slots` does so
        for the whole graph.
        """
        slots = self.alive_slots()
        n_live = int(slots.size)
        remap = np.full(self._n, -1, dtype=np.int64)
        remap[slots] = np.arange(n_live, dtype=np.int64)
        capacity = _INITIAL_CAPACITY
        while capacity < n_live:
            capacity *= 2
        for name in ("_starts", "_ends"):
            fresh = np.empty((capacity, self._dim), dtype=np.float64)
            fresh[:n_live] = getattr(self, name)[slots]
            setattr(self, name, fresh)
        for name, dtype in (
            ("_traj_ids", np.int64),
            ("_weights", np.float64),
            ("_stamps", np.float64),
        ):
            fresh = np.empty(capacity, dtype=dtype)
            fresh[:n_live] = getattr(self, name)[slots]
            setattr(self, name, fresh)
        fresh_alive = np.zeros(capacity, dtype=bool)
        fresh_alive[:n_live] = True
        self._alive = fresh_alive
        self._capacity = capacity
        self._n = n_live
        self._n_alive = n_live
        return remap

    def compact(self) -> Tuple[SegmentSet, np.ndarray]:
        """The survivors as an immutable :class:`SegmentSet` (positional
        ids in ascending slot order) plus the slot array mapping each
        position back to its slot."""
        slots = self.alive_slots()
        segments = SegmentSet(
            self._starts[slots].copy(),
            self._ends[slots].copy(),
            self._traj_ids[slots].copy(),
            self._weights[slots].copy(),
        )
        return segments, slots

    def __repr__(self) -> str:
        return (
            f"StreamSegmentStore(n_slots={self._n}, "
            f"n_alive={self._n_alive}, dim={self._dim})"
        )


class DynamicNeighborGraph:
    """ε-neighborhood adjacency maintained under insert and evict."""

    def __init__(
        self,
        eps: float,
        distance: Optional[SegmentDistance] = None,
        dim: int = 2,
        cell_size: Optional[float] = None,
    ):
        if eps < 0:
            raise ClusteringError(f"eps must be non-negative, got {eps}")
        self.eps = float(eps)
        self.distance = distance if distance is not None else SegmentDistance()
        self.store = StreamSegmentStore(dim=dim)
        self._prefilter = self.distance.w_perp > 0 and self.distance.w_par > 0
        if self._prefilter:
            self._radius = candidate_radius(self.eps, self.distance)
            self._grid = SegmentGrid(
                self.store,
                cell_size=cell_size if cell_size else max(self._radius, 1e-9),
            )
        else:
            self._radius = None
            self._grid = None
        #: proper neighbors only (no self loop), distance per edge.
        self._adjacency: Dict[int, Dict[int, float]] = {}

    # -- queries -----------------------------------------------------------
    @property
    def n_alive(self) -> int:
        return self.store.n_alive

    @property
    def n_edges(self) -> int:
        """Symmetric edges, each unordered pair counted once."""
        return sum(len(row) for row in self._adjacency.values()) // 2

    def neighbors_of(self, slot: int) -> np.ndarray:
        """``N_eps`` of live *slot*, ascending, self included — the same
        row a batch :class:`NeighborGraph` over the survivors holds."""
        if not self.store.is_alive(slot):
            raise ClusteringError(f"slot {slot} is not alive")
        row = np.fromiter(
            self._adjacency[slot], dtype=np.int64,
            count=len(self._adjacency[slot]),
        )
        return np.sort(np.append(row, slot))

    def neighbor_distances(self, slot: int) -> Dict[int, float]:
        """Proper-neighbor distances of live *slot* (no self entry)."""
        if not self.store.is_alive(slot):
            raise ClusteringError(f"slot {slot} is not alive")
        return dict(self._adjacency[slot])

    def adjacent(self, slot: int):
        """Proper-neighbor slots of live *slot* (unordered view, no
        copy) — the hot path for label maintenance."""
        return self._adjacency[slot].keys()

    # -- updates -----------------------------------------------------------
    def insert(
        self,
        start: np.ndarray,
        end: np.ndarray,
        traj_id: int,
        weight: float = 1.0,
        stamp: float = 0.0,
    ) -> Tuple[int, np.ndarray]:
        """Add a segment; returns ``(slot, proper_neighbors)`` with the
        neighbor slots ascending."""
        slot = self.store.append(start, end, traj_id, weight, stamp)
        if self._grid is not None:
            self._grid.insert(slot)
            candidates = self._grid.candidates_near(slot, self._radius)
            candidates = candidates[
                self.store.alive_mask[candidates] & (candidates != slot)
            ]
        else:
            candidates = self.store.alive_slots()
            candidates = candidates[candidates != slot]
        row: Dict[int, float] = {}
        if candidates.size:
            dists = self.distance.pairs(
                self.store,
                np.full(candidates.size, slot, dtype=np.int64),
                candidates,
            )
            mask = dists <= self.eps
            for mate, dist in zip(candidates[mask], dists[mask]):
                mate = int(mate)
                dist = float(dist)
                row[mate] = dist
                self._adjacency[mate][slot] = dist
        self._adjacency[slot] = row
        return slot, np.sort(
            np.fromiter(row, dtype=np.int64, count=len(row))
        )

    def insert_batch(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        traj_ids: np.ndarray,
        weights: Optional[np.ndarray] = None,
        stamps: Optional[np.ndarray] = None,
    ) -> List[Tuple[int, np.ndarray]]:
        """Add many segments through one grid join and one kernel call;
        returns ``(slot, insertion_time_neighbors)`` per segment in
        input order, neighbors ascending.

        The result is *identical* to sequential :meth:`insert` calls in
        array order.  All segments enter the store and grid first, then
        candidates come from one
        :meth:`~repro.index.grid.SegmentGrid.candidates_near_many` join;
        filtering them to ``candidate < slot`` recovers exactly the
        alive-at-insertion-time set sequential insertion would have
        queried (slot ids are allocation-ordered and nothing is evicted
        mid-batch).  The pair kernel is elementwise, so one call over
        the concatenated pairs produces the same distances, and edges
        are folded query-major with candidates ascending — the same
        adjacency-row insertion order as sequential inserts.
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        n = starts.shape[0]
        if weights is None:
            weights = np.ones(n, dtype=np.float64)
        if stamps is None:
            stamps = np.zeros(n, dtype=np.float64)
        slots = [
            self.store.append(
                starts[i], ends[i], int(traj_ids[i]),
                float(weights[i]), float(stamps[i]),
            )
            for i in range(n)
        ]
        if not slots:
            return []
        slot_arr = np.asarray(slots, dtype=np.int64)
        if self._grid is not None:
            for slot in slots:
                self._grid.insert(slot)
            query_pos, candidates = self._grid.candidates_near_many(
                slot_arr, self._radius
            )
            query_slots = slot_arr[query_pos]
            keep = (
                self.store.alive_mask[candidates]
                & (candidates < query_slots)
            )
            query_slots = query_slots[keep]
            candidates = candidates[keep]
        else:
            alive = self.store.alive_slots()
            query_chunks: List[np.ndarray] = []
            candidate_chunks: List[np.ndarray] = []
            for slot in slots:
                mates = alive[alive < slot]
                query_chunks.append(
                    np.full(mates.size, slot, dtype=np.int64)
                )
                candidate_chunks.append(mates)
            query_slots = np.concatenate(query_chunks)
            candidates = np.concatenate(candidate_chunks)
        for slot in slots:
            self._adjacency[slot] = {}
        mates_of: Dict[int, List[int]] = {slot: [] for slot in slots}
        if query_slots.size:
            dists = self.distance.pairs(self.store, query_slots, candidates)
            mask = dists <= self.eps
            for slot, mate, dist in zip(
                query_slots[mask].tolist(),
                candidates[mask].tolist(),
                dists[mask].tolist(),
            ):
                self._adjacency[slot][mate] = dist
                self._adjacency[mate][slot] = dist
                mates_of[slot].append(mate)
        return [
            (slot, np.asarray(mates_of[slot], dtype=np.int64))
            for slot in slots
        ]

    def evict(self, slot: int) -> np.ndarray:
        """Remove a live segment; returns its former proper neighbors
        (ascending)."""
        if not self.store.is_alive(slot):
            raise ClusteringError(f"slot {slot} is not alive")
        row = self._adjacency.pop(slot)
        for mate in row:
            del self._adjacency[mate][slot]
        if self._grid is not None:
            self._grid.remove(slot)
        self.store.kill(slot)
        return np.sort(np.fromiter(row, dtype=np.int64, count=len(row)))

    def compact_slots(self) -> np.ndarray:
        """Compact the slot store and remap the adjacency and the grid
        to the new ids; returns the old -> new slot map (-1 = dead).

        Pure renumbering: no distance is re-evaluated, no edge is
        added or dropped, and ``neighbors_of`` answers are the same
        rows under new names."""
        remap = self.store.compact_slots()
        self._adjacency = {
            int(remap[slot]): {
                int(remap[mate]): dist for mate, dist in row.items()
            }
            for slot, row in self._adjacency.items()
        }
        if self._grid is not None:
            # Rebuild over the compacted store: every slot is now live,
            # so the constructor's full-range insert is exactly the
            # live set.
            self._grid = SegmentGrid(
                self.store,
                cell_size=self._grid.cell_size,
                max_cells_per_segment=self._grid.max_cells_per_segment,
            )
        return remap

    # -- checkpointing -----------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, dist)`` with ``u < v``, each unordered edge once."""
        us: List[int] = []
        vs: List[int] = []
        ds: List[float] = []
        for u, row in self._adjacency.items():
            for v, dist in row.items():
                if u < v:
                    us.append(u)
                    vs.append(v)
                    ds.append(dist)
        return (
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(ds, dtype=np.float64),
        )

    def restore_slots(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        traj_ids: np.ndarray,
        weights: np.ndarray,
        stamps: np.ndarray,
        alive: np.ndarray,
        edges_u: np.ndarray,
        edges_v: np.ndarray,
        edges_d: np.ndarray,
    ) -> None:
        """Refill an *empty* graph from checkpointed slot and edge
        arrays without re-evaluating any distance."""
        if len(self.store) or self._adjacency:
            raise ClusteringError("can only restore into an empty graph")
        for slot in range(starts.shape[0]):
            self.store.append(
                starts[slot], ends[slot], int(traj_ids[slot]),
                float(weights[slot]), float(stamps[slot]),
            )
            if alive[slot]:
                self._adjacency[slot] = {}
                if self._grid is not None:
                    self._grid.insert(slot)
            else:
                self.store.kill(slot)
        for u, v, dist in zip(
            edges_u.tolist(), edges_v.tolist(), edges_d.tolist()
        ):
            self._adjacency[u][v] = dist
            self._adjacency[v][u] = dist

    def __repr__(self) -> str:
        return (
            f"DynamicNeighborGraph(eps={self.eps}, n_alive={self.n_alive}, "
            f"n_edges={self.n_edges})"
        )
