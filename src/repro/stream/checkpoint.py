"""Snapshot/restore for a :class:`~repro.stream.pipeline.StreamingTRACLUS`.

One ``.npz`` file holds the whole session: the configuration, every
trajectory's points and resumable Figure 8 scan state, the segment
store (dead slots included — slot ids are identities), and the ε-graph
*edges with their distances*, so a restore re-evaluates no distance at
all.  Label state (cardinalities, cores, components) is derived, not
stored: :meth:`OnlineDBSCAN.rebuild_from_graph` reconstructs it in one
O(V + E) pass, guaranteeing a restored session answers :meth:`labels`
identically and continues identically under further appends.

The v2 format additionally records the stable cluster tokens (one
``(token, anchor core member)`` pair per component plus the mint
counter): after the rebuild, :meth:`OnlineDBSCAN.adopt_tokens` renames
the reconstructed components back to their checkpointed identities, so
the *label diffs* a restored session emits — not just its labels — are
identical to the original session's.  v1 checkpoints still load; their
sessions get fresh (but internally consistent) tokens.

Only NumPy and the standard library are used (``np.savez_compressed``
plus one JSON metadata string) — no pickle, so checkpoints are
portable and inspectable.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Union

import numpy as np

from repro.core.config import StreamConfig
from repro.exceptions import ReproError
from repro.partition.incremental import IncrementalPartitioner
from repro.stream.ingest import _TrajectoryState
from repro.stream.pipeline import StreamingTRACLUS

#: Format marker written into every checkpoint.
CHECKPOINT_FORMAT = "repro-stream-checkpoint-v2"

#: Formats :func:`load_checkpoint` accepts (v1 lacks stable tokens).
_ACCEPTED_FORMATS = ("repro-stream-checkpoint-v1", CHECKPOINT_FORMAT)


def save_checkpoint(pipeline: StreamingTRACLUS, path: Union[str, "object"]) -> None:
    """Write the full streaming state to *path* (an ``.npz`` file)."""
    store = pipeline.clusterer.store
    edges_u, edges_v, edges_d = pipeline.clusterer.graph.edge_arrays()
    arrays = {
        "store_starts": store.starts.copy(),
        "store_ends": store.ends.copy(),
        "store_traj_ids": store.traj_ids.copy(),
        "store_weights": store.weights.copy(),
        "store_stamps": store.stamps.copy(),
        "store_alive": store.alive_mask.copy(),
        "edges_u": edges_u,
        "edges_v": edges_v,
        "edges_d": edges_d,
        "key_map": np.array(
            sorted(pipeline._key_to_slot.items()), dtype=np.int64
        ).reshape(-1, 2),
    }
    token_pairs, next_token = pipeline.clusterer.export_tokens()
    arrays["comp_tokens"] = token_pairs
    trajectories = []
    for traj_id, state in pipeline.stream._trajectories.items():
        partitioner = state.partitioner
        start_index, length = partitioner.scan_state()
        trajectories.append(
            {
                "traj_id": traj_id,
                "weight": state.weight,
                "timed": state.times is not None,
                "committed": partitioner.committed,
                "start_index": start_index,
                "length": length,
                "trailing_key": (
                    -1 if state.trailing_key is None else state.trailing_key
                ),
            }
        )
        arrays[f"traj_{traj_id}_points"] = partitioner.points.copy()
        if state.times is not None:
            arrays[f"traj_{traj_id}_times"] = np.asarray(
                state.times, dtype=np.float64
            )
    meta = {
        "format": CHECKPOINT_FORMAT,
        "config": asdict(pipeline.config),
        "next_token": int(next_token),
        "next_key": pipeline.stream._next_key,
        "evict_cursor": pipeline._evict_cursor,
        "max_stamp": (
            None if not np.isfinite(pipeline._max_stamp)
            else pipeline._max_stamp
        ),
        "trajectories": trajectories,
    }
    arrays["meta"] = np.array(json.dumps(meta))
    np.savez_compressed(path, **arrays)


def load_checkpoint(
    path: Union[str, "object"], metrics=None
) -> StreamingTRACLUS:
    """Rebuild a :class:`StreamingTRACLUS` from a checkpoint file.

    *metrics* optionally hands the restored pipeline a
    :class:`~repro.obs.MetricsRegistry` (restored shard workers keep
    reporting)."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") not in _ACCEPTED_FORMATS:
            raise ReproError(
                f"not a stream checkpoint (format={meta.get('format')!r})"
            )
        pipeline = StreamingTRACLUS(
            StreamConfig(**meta["config"]), metrics=metrics
        )
        pipeline.clusterer.graph.restore_slots(
            archive["store_starts"],
            archive["store_ends"],
            archive["store_traj_ids"],
            archive["store_weights"],
            archive["store_stamps"],
            archive["store_alive"],
            archive["edges_u"],
            archive["edges_v"],
            archive["edges_d"],
        )
        pipeline.clusterer.rebuild_from_graph()
        if "comp_tokens" in archive.files:
            pipeline.clusterer.adopt_tokens(
                archive["comp_tokens"], int(meta["next_token"])
            )
        for entry in meta["trajectories"]:
            traj_id = int(entry["traj_id"])
            partitioner = IncrementalPartitioner.restore(
                pipeline.config.suppression,
                archive[f"traj_{traj_id}_points"],
                entry["committed"],
                entry["start_index"],
                entry["length"],
            )
            state = _TrajectoryState(partitioner, float(entry["weight"]))
            if entry["timed"]:
                state.times = archive[f"traj_{traj_id}_times"].tolist()
            if entry["trailing_key"] >= 0:
                state.trailing_key = int(entry["trailing_key"])
            pipeline.stream._trajectories[traj_id] = state
        key_map = archive["key_map"]
    pipeline.stream._next_key = int(meta["next_key"])
    pipeline._evict_cursor = int(meta["evict_cursor"])
    pipeline._max_stamp = (
        -np.inf if meta["max_stamp"] is None else float(meta["max_stamp"])
    )
    pipeline._key_to_slot = {int(k): int(s) for k, s in key_map}
    pipeline._slot_to_key = {s: k for k, s in pipeline._key_to_slot.items()}
    pipeline.view = pipeline.clusterer.snapshot_view()
    return pipeline
