"""The streaming TRACLUS pipeline: ingestion -> graph -> labels.

:class:`StreamingTRACLUS` wires a
:class:`~repro.stream.ingest.TrajectoryStream` (suffix-only MDL
re-partitioning) to an :class:`~repro.stream.online_dbscan.OnlineDBSCAN`
(incremental ε-graph and labels) and applies the configured sliding
window.  Each :meth:`append` returns a :class:`StreamUpdate` describing
what changed — the streaming analogue of one batch
:meth:`TRACLUS.fit <repro.core.traclus.TRACLUS.fit>` call, at the cost
of only the touched neighborhood.

Updates are built from first-class label diffs: the clusterer's
:meth:`~repro.stream.online_dbscan.OnlineDBSCAN.flush_diff` re-derives
only the slots the append could have moved and reports transitions in
*stable* cluster ids (``StreamUpdate.diff``, a
:class:`~repro.stream.view.LabelDiff` carrying merge/split/visibility
events), so per-append label cost is O(delta) rather than O(live).  The
pipeline folds every diff into a :class:`~repro.stream.view.LabelView`;
``StreamUpdate.labels`` derives the dense batch-identical map from that
view lazily, only when a caller asks.

Two scale features complete the picture: :meth:`bulk_load` seeds a
session from a whole corpus through the lock-step batched phase-1
engine (identical end state to sequential appends, at corpus speed),
and slot-store compaction (``StreamConfig.compact_dead_fraction``)
reclaims dead slots via a monotone id remap so unbounded sessions stop
growing with total ingested history.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import StreamConfig
from repro.exceptions import ClusteringError
from repro.model.cluster import Cluster
from repro.model.trajectory import Trajectory
from repro.obs import NULL_REGISTRY
from repro.representative.sweep import RepresentativeConfig
from repro.stream.ingest import TrajectoryStream
from repro.stream.online_dbscan import OnlineDBSCAN
from repro.stream.view import LabelDiff, LabelView

#: Compaction never fires below this slot count — renumbering a tiny
#: store would cost more churn than the dead slots it reclaims.
_COMPACT_MIN_SLOTS = 128

#: Batched insertion (one candidate join for the whole delta) kicks in
#: from this many inserted segments per update.
_BATCH_INSERT_MIN = 2


class StreamUpdate:
    """What one append (or bulk load) did to the clustering.

    ``changed`` maps slot -> (old label, new label) in *stable* cluster
    ids (``diff.changed`` verbatim); ``None`` stands for "not in the
    window" on either side and ``-1`` is noise.  ``diff`` is the full
    :class:`~repro.stream.view.LabelDiff`, including merge/split and
    Step-3 visibility events.  ``n_alive``/``n_clusters`` summarize the
    post-update state.

    ``labels`` is the full current slot -> dense label map (-1 noise),
    identical to what a batch refit over the window would produce.  It
    is derived from the pipeline's label view *lazily* — appends no
    longer pay O(live) for it — and therefore must be read before the
    next update is applied (later access raises).

    When slot-store compaction ran after this update
    (``StreamConfig.compact_dead_fraction``), ``remapped`` maps every
    live slot's pre-compaction id to its new id; the other fields keep
    the pre-compaction ids the caller has been seeing (``labels`` is
    materialized eagerly in that case).  ``None`` means no compaction
    happened and all reported ids remain valid.
    """

    __slots__ = (
        "inserted",
        "evicted",
        "changed",
        "diff",
        "n_clusters",
        "n_alive",
        "remapped",
        "_view",
        "_version",
        "_labels",
    )

    def __init__(
        self,
        inserted: Tuple[int, ...],
        evicted: Tuple[int, ...],
        diff: LabelDiff,
        n_clusters: int,
        n_alive: int,
        view: LabelView,
    ):
        self.inserted = inserted
        self.evicted = evicted
        self.diff = diff
        self.changed = diff.changed
        self.n_clusters = n_clusters
        self.n_alive = n_alive
        self.remapped: Optional[Dict[int, int]] = None
        self._view = view
        self._version = view.version
        self._labels: Optional[Dict[int, int]] = None

    @property
    def labels(self) -> Dict[int, int]:
        if self._labels is None:
            if self._view.version != self._version:
                raise ClusteringError(
                    "StreamUpdate.labels read after later updates were "
                    "applied; the dense map is derived lazily from the "
                    "live view — read it before the next append, or "
                    "fold StreamUpdate.diff into your own LabelView"
                )
            self._labels = self._view.dense_map()
        return self._labels

    def __repr__(self) -> str:
        return (
            f"StreamUpdate(inserted={len(self.inserted)}, "
            f"evicted={len(self.evicted)}, changed={len(self.changed)}, "
            f"n_alive={self.n_alive}, n_clusters={self.n_clusters})"
        )


class StreamingTRACLUS:
    """Online partition-and-group over append-only point streams."""

    def __init__(self, config: StreamConfig, metrics=None):
        self.config = config
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_append_seconds = self._metrics.histogram(
            "repro_stream_append_seconds",
            help="Wall seconds per streaming append (ingest + recluster).",
        )
        self._m_diff_changed = self._metrics.counter(
            "repro_stream_diff_changed_total",
            help="Per-slot label transitions emitted across all updates.",
        )
        self._m_flush_touched = self._metrics.histogram(
            "repro_stream_flush_touched",
            help="Slots re-derived per update (the O(delta) label cost).",
        )
        self.stream = TrajectoryStream(suppression=config.suppression)
        self.clusterer = OnlineDBSCAN(
            eps=config.eps,
            min_lns=config.min_lns,
            distance=config.distance(),
            cardinality_threshold=config.cardinality_threshold,
            use_weights=config.use_weights,
            dim=config.dim,
        )
        #: The pipeline's own fold of every emitted diff; consumers can
        #: keep an identical one from the diffs alone.
        self.view = LabelView()
        self._key_to_slot: Dict[int, int] = {}
        self._slot_to_key: Dict[int, int] = {}
        self._evict_cursor = 0
        self._max_stamp = -np.inf

    # -- ingestion ---------------------------------------------------------
    def append(
        self,
        traj_id: int,
        points: Union[Sequence[Sequence[float]], np.ndarray],
        times: Optional[Sequence[float]] = None,
        weight: Optional[float] = None,
    ) -> StreamUpdate:
        """Feed points to one trajectory and update the clustering.

        ``weight`` fixes the trajectory weight at its first append
        (``None`` = default 1.0, or keep the opening weight later)."""
        if not self._metrics.enabled:
            delta = self.stream.append(
                traj_id, points, times=times, weight=weight
            )
            inserted, evicted = self._apply_delta(delta)
            evicted.extend(self._apply_window())
            return self._build_update(inserted, evicted)
        started = time.perf_counter()
        delta = self.stream.append(traj_id, points, times=times, weight=weight)
        inserted, evicted = self._apply_delta(delta)
        evicted.extend(self._apply_window())
        update = self._build_update(inserted, evicted)
        self._m_append_seconds.observe(time.perf_counter() - started)
        return update

    def bulk_load(self, items, partition=None) -> StreamUpdate:
        """Seed the session with many *new* trajectories at once.

        *items* are :class:`~repro.model.trajectory.Trajectory` objects
        or ``(traj_id, points[, times[, weight]])`` tuples (see
        :meth:`TrajectoryStream.bulk_append
        <repro.stream.ingest.TrajectoryStream.bulk_append>`).  Phase 1
        runs through the lock-step batched engine in one vectorized
        scan, then every emitted segment is inserted in the same order
        per-trajectory appends would have used, so the final labels,
        slot assignments, and resumable per-trajectory scan states are
        identical to sequential ingestion — at corpus speed.  The
        eviction window is applied once at the end (the final alive set
        it produces equals applying it after every append).

        *partition* hands over a
        :class:`~repro.api.workspace.PartitionArtifact` whose scan
        states cover *items* in order (a Workspace over the same corpus
        produces exactly that; ``Workspace.seed_streaming`` is the
        one-call wrapper).  Phase 1 is then skipped — the artifact's
        committed characteristic points and resumable scan positions
        seed the stream bitwise identically to a fresh scan.
        """
        scan = None
        if partition is not None:
            items = list(items)
            # scan_states() raises on artifacts without phase-1
            # provenance (segment-bound workspaces).
            scan = partition.scan_states()
            if partition.suppression != self.config.suppression:
                raise ClusteringError(
                    f"partition artifact was scanned with suppression="
                    f"{partition.suppression} but this stream runs "
                    f"suppression={self.config.suppression}; the scan "
                    f"states would seed an inconsistent session"
                )
            # When the items are Trajectory objects (the Workspace path
            # always passes them), pin the artifact to this exact
            # corpus; tuple items still get the per-row structural
            # checks in bulk_append.
            if partition.corpus_key is not None and all(
                isinstance(item, Trajectory) for item in items
            ):
                from repro.api.fingerprint import corpus_fingerprint

                if corpus_fingerprint(items) != partition.corpus_key:
                    raise ClusteringError(
                        "partition artifact was built over a different "
                        "corpus than the items being bulk-loaded"
                    )
        delta = self.stream.bulk_append(items, scan=scan)
        inserted, evicted = self._apply_delta(delta)
        evicted.extend(self._apply_window())
        return self._build_update(inserted, evicted)

    def _apply_delta(self, delta) -> Tuple[List[int], List[int]]:
        """Retract-then-insert one :class:`StreamDelta` into the
        clusterer; returns the touched ``(inserted, evicted)`` slots.

        Multi-segment deltas go through the clusterer's batched insert
        (one grid candidate join for the whole delta) — the resulting
        state is identical to sequential insertion in record order.
        """
        evicted: List[int] = []
        for key in delta.retracted:
            slot = self._key_to_slot.pop(key, None)
            if slot is None:
                continue  # already evicted by the window
            del self._slot_to_key[slot]
            self.clusterer.evict(slot)
            evicted.append(slot)
        records = delta.inserted
        inserted: List[int] = []
        if len(records) >= _BATCH_INSERT_MIN:
            inserted = self.clusterer.insert_batch(
                np.stack([record.start for record in records]),
                np.stack([record.end for record in records]),
                np.array([record.traj_id for record in records], dtype=np.int64),
                np.array([record.weight for record in records], dtype=np.float64),
                np.array([record.stamp for record in records], dtype=np.float64),
            )
            for record, slot in zip(records, inserted):
                self._key_to_slot[record.key] = slot
                self._slot_to_key[slot] = record.key
                if record.stamp > self._max_stamp:
                    self._max_stamp = record.stamp
            return inserted, evicted
        for record in records:
            slot = self.clusterer.insert(
                record.start,
                record.end,
                record.traj_id,
                record.weight,
                record.stamp,
            )
            self._key_to_slot[record.key] = slot
            self._slot_to_key[slot] = record.key
            if record.stamp > self._max_stamp:
                self._max_stamp = record.stamp
            inserted.append(slot)
        return inserted, evicted

    def _evict_slot(self, slot: int) -> None:
        key = self._slot_to_key.pop(slot)
        self._key_to_slot.pop(key, None)
        self.clusterer.evict(slot)

    def _apply_window(self) -> List[int]:
        """Enforce the configured eviction policies (horizon first, then
        the count cap)."""
        evicted: List[int] = []
        store = self.clusterer.store
        if self.config.horizon is not None and np.isfinite(self._max_stamp):
            cutoff = self._max_stamp - self.config.horizon
            for slot in store.alive_slots().tolist():
                if store.stamps[slot] < cutoff:
                    self._evict_slot(slot)
                    evicted.append(slot)
        if self.config.max_segments is not None:
            # Slots are allocated in stream order, so the oldest live
            # segment is the smallest live slot; the cursor only ever
            # moves forward (amortized O(1) per eviction).
            while store.n_alive > self.config.max_segments:
                while not store.is_alive(self._evict_cursor):
                    self._evict_cursor += 1
                self._evict_slot(self._evict_cursor)
                evicted.append(self._evict_cursor)
        return evicted

    def _build_update(
        self, inserted: List[int], evicted: List[int]
    ) -> StreamUpdate:
        diff = self.clusterer.flush_diff()
        self.view.apply(diff)
        if self._metrics.enabled:
            self._m_diff_changed.inc(float(len(diff.changed)))
            self._m_flush_touched.observe(float(diff.touched))
        update = StreamUpdate(
            inserted=tuple(inserted),
            evicted=tuple(evicted),
            diff=diff,
            n_clusters=self.view.n_clusters,
            n_alive=self.view.n_live,
            view=self.view,
        )
        remapped = self._maybe_compact()
        if remapped is not None:
            # Pin the documented pre-compaction ids before the view
            # follows the remap.
            update.labels
            self.view.remap(remapped)
            update.remapped = remapped
        return update

    # -- compaction --------------------------------------------------------
    def _maybe_compact(self) -> Optional[Dict[int, int]]:
        """Reclaim dead slots once their fraction of the slot space
        exceeds ``config.compact_dead_fraction``.

        The remap is monotone over live slots, so relative slot order —
        and with it the distance kernel's id tie-break, every computed
        distance, and every label — is preserved bitwise; only the ids
        change.  Internal key maps are remapped here (the label view in
        :meth:`_build_update`, which also surfaces the old -> new map
        on the update so callers can follow).
        """
        fraction = self.config.compact_dead_fraction
        store = self.clusterer.store
        if fraction is None or len(store) < _COMPACT_MIN_SLOTS:
            return None
        dead = len(store) - store.n_alive
        if dead <= fraction * len(store):
            return None
        remap = self.clusterer.compact_slots()
        live = {
            old: int(new)
            for old, new in enumerate(remap.tolist())
            if new >= 0
        }
        self._key_to_slot = {
            key: live[slot] for key, slot in self._key_to_slot.items()
        }
        self._slot_to_key = {
            slot: key for key, slot in self._key_to_slot.items()
        }
        # All dead slots are gone: the oldest live slot is found from 0.
        self._evict_cursor = 0
        return live

    # -- queries -----------------------------------------------------------
    def labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(slots, labels)`` (see :meth:`OnlineDBSCAN.labels`)."""
        return self.clusterer.labels()

    def representatives(self) -> List[Cluster]:
        """Current clusters with lazily refreshed representatives."""
        return self.clusterer.representatives(
            RepresentativeConfig(
                min_lns=self.config.min_lns, gamma=self.config.gamma
            )
        )

    @property
    def n_alive(self) -> int:
        return self.clusterer.store.n_alive

    def __repr__(self) -> str:
        return (
            f"StreamingTRACLUS(n_alive={self.n_alive}, "
            f"n_trajectories={len(self.stream.traj_ids)})"
        )
