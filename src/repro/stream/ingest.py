"""Trajectory ingestion: point appends in, segment deltas out.

:class:`TrajectoryStream` owns one
:class:`~repro.partition.incremental.IncrementalPartitioner` per
trajectory and translates its resumable Figure 8 scan into a *delta
protocol* over segments:

* every emitted segment carries a stream-unique integer ``key``;
* a **committed** segment (between two committed characteristic
  points) is inserted once and never touched again;
* the **trailing** segment (last committed point to the current last
  point) is retracted and re-inserted on every append that moves the
  trajectory's end.

Consumers apply a :class:`StreamDelta` by evicting the retracted keys
and inserting the new records, in that order.  After any sequence of
appends the live records equal the segments a batch
``SegmentSet.from_partitions`` would produce for the same points —
that is what makes online clustering comparable to a batch refit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TrajectoryError
from repro.partition.incremental import IncrementalPartitioner


@dataclass(frozen=True)
class SegmentRecord:
    """One segment emitted by the stream.

    ``stamp`` is the event time of the segment's end point (the point
    index when the feed carries no timestamps) — eviction horizons are
    expressed against it.  ``trailing`` marks records that a later
    append to the same trajectory will retract.
    """

    key: int
    traj_id: int
    start: np.ndarray
    end: np.ndarray
    weight: float
    stamp: float
    trailing: bool


@dataclass(frozen=True)
class StreamDelta:
    """Retract-then-insert instructions for one append."""

    inserted: Tuple[SegmentRecord, ...]
    retracted: Tuple[int, ...]

    def __bool__(self) -> bool:
        return bool(self.inserted or self.retracted)


class _TrajectoryState:
    __slots__ = ("partitioner", "weight", "times", "trailing_key")

    def __init__(self, partitioner: IncrementalPartitioner, weight: float):
        self.partitioner = partitioner
        self.weight = weight
        self.times: Optional[List[float]] = None
        self.trailing_key: Optional[int] = None


class TrajectoryStream:
    """Multi-trajectory append-only ingestion front end."""

    def __init__(self, suppression: float = 0.0):
        self.suppression = float(suppression)
        self._trajectories: Dict[int, _TrajectoryState] = {}
        self._next_key = 0

    # -- introspection -----------------------------------------------------
    @property
    def traj_ids(self) -> List[int]:
        return sorted(self._trajectories)

    def n_points(self, traj_id: int) -> int:
        state = self._trajectories.get(int(traj_id))
        return 0 if state is None else state.partitioner.n_points

    def characteristic_points(self, traj_id: int) -> List[int]:
        state = self._trajectories.get(int(traj_id))
        if state is None:
            raise TrajectoryError(f"unknown trajectory id {traj_id}")
        return state.partitioner.characteristic_points()

    # -- ingestion ---------------------------------------------------------
    def _take_key(self) -> int:
        key = self._next_key
        self._next_key += 1
        return key

    def _record(
        self,
        state: _TrajectoryState,
        traj_id: int,
        a: int,
        b: int,
        trailing: bool,
    ) -> SegmentRecord:
        points = state.partitioner.points
        stamp = state.times[b] if state.times is not None else float(b)
        return SegmentRecord(
            key=self._take_key(),
            traj_id=traj_id,
            start=points[a].copy(),
            end=points[b].copy(),
            weight=state.weight,
            stamp=stamp,
            trailing=trailing,
        )

    def append(
        self,
        traj_id: int,
        points: Union[Sequence[Sequence[float]], np.ndarray],
        times: Optional[Sequence[float]] = None,
        weight: Optional[float] = None,
    ) -> StreamDelta:
        """Append *points* to trajectory *traj_id* and return the delta.

        ``times`` (one stamp per appended point, non-decreasing across
        appends) enables timestamp-horizon eviction; a trajectory must
        be consistently timed or consistently untimed.  ``weight`` is
        fixed at the trajectory's first append (default 1.0); passing
        any explicit weight that differs from it later is an error,
        ``None`` means "keep the opening weight".
        """
        traj_id = int(traj_id)
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[None, :]
        state = self._trajectories.get(traj_id)
        if state is None:
            opening_weight = 1.0 if weight is None else float(weight)
            if opening_weight <= 0:
                raise TrajectoryError(
                    f"trajectory weight must be positive, got {weight}"
                )
            state = _TrajectoryState(
                IncrementalPartitioner(self.suppression), opening_weight
            )
            self._trajectories[traj_id] = state
            if times is not None:
                state.times = []
        elif weight is not None and state.weight != float(weight):
            raise TrajectoryError(
                f"trajectory {traj_id} was opened with weight "
                f"{state.weight}; cannot change it to {weight}"
            )
        if (times is not None) != (state.times is not None):
            raise TrajectoryError(
                f"trajectory {traj_id} must be consistently timed: "
                f"times {'given' if times is not None else 'missing'} now, "
                f"{'missing' if times is not None else 'given'} before"
            )
        if times is not None:
            times = np.asarray(times, dtype=np.float64)
            if times.shape != (points.shape[0],):
                raise TrajectoryError(
                    f"times must have one entry per appended point: "
                    f"{times.shape} vs {points.shape[0]}"
                )
            if np.any(np.diff(times) < 0) or (
                state.times and times[0] < state.times[-1]
            ):
                raise TrajectoryError("timestamps must be non-decreasing")

        part = state.partitioner
        previous_last = part.committed[-1] if part.n_points else None
        had_trailing = state.trailing_key is not None
        newly_committed = part.append(points)
        if times is not None:
            state.times.extend(float(t) for t in times)

        retracted: List[int] = []
        inserted: List[SegmentRecord] = []
        if had_trailing:
            # The trajectory's end moved: the old trailing segment is
            # stale whether or not new points were committed.
            retracted.append(state.trailing_key)
            state.trailing_key = None
        anchor = previous_last if previous_last is not None else 0
        for cp in newly_committed:
            inserted.append(self._record(state, traj_id, anchor, cp, False))
            anchor = cp
        last_committed = part.committed[-1]
        end = part.n_points - 1
        if end > last_committed:
            record = self._record(state, traj_id, last_committed, end, True)
            state.trailing_key = record.key
            inserted.append(record)
        return StreamDelta(tuple(inserted), tuple(retracted))

    def __repr__(self) -> str:
        return (
            f"TrajectoryStream(n_trajectories={len(self._trajectories)}, "
            f"next_key={self._next_key})"
        )
