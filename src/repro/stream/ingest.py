"""Trajectory ingestion: point appends in, segment deltas out.

:class:`TrajectoryStream` owns one
:class:`~repro.partition.incremental.IncrementalPartitioner` per
trajectory and translates its resumable Figure 8 scan into a *delta
protocol* over segments:

* every emitted segment carries a stream-unique integer ``key``;
* a **committed** segment (between two committed characteristic
  points) is inserted once and never touched again;
* the **trailing** segment (last committed point to the current last
  point) is retracted and re-inserted on every append that moves the
  trajectory's end.

Consumers apply a :class:`StreamDelta` by evicting the retracted keys
and inserting the new records, in that order.  After any sequence of
appends the live records equal the segments a batch
``SegmentSet.from_partitions`` would produce for the same points —
that is what makes online clustering comparable to a batch refit.

Whole-corpus seeding goes through :meth:`TrajectoryStream.bulk_append`:
the lock-step batched engine (:mod:`repro.partition.batched`) partitions
every new trajectory in one vectorized scan and hands back each
trajectory's resumable Figure 8 state, so the bulk path emits exactly
the records per-trajectory appends would — just without the per-point
interpreter loop — and later appends continue incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TrajectoryError
from repro.model.ragged import RaggedPoints
from repro.model.trajectory import Trajectory
from repro.partition.batched import lockstep_scan
from repro.partition.incremental import IncrementalPartitioner


def _as_point_batch(points) -> np.ndarray:
    """Coerce one append's points to float64, promoting a single bare
    point to a ``(1, d)`` batch."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[None, :]
    return points


def _opening_weight(weight: Optional[float]) -> float:
    """Validate a trajectory's opening weight (``None`` = default 1.0)."""
    opening = 1.0 if weight is None else float(weight)
    if opening <= 0:
        raise TrajectoryError(
            f"trajectory weight must be positive, got {weight}"
        )
    return opening


def _validated_times(times, n_points: int) -> np.ndarray:
    """Validate one batch's timestamps (shape and monotonicity within
    the batch; cross-batch monotonicity is the caller's to check)."""
    times = np.asarray(times, dtype=np.float64)
    if times.shape != (n_points,):
        raise TrajectoryError(
            f"times must have one entry per appended point: "
            f"{times.shape} vs {n_points}"
        )
    if np.any(np.diff(times) < 0):
        raise TrajectoryError("timestamps must be non-decreasing")
    return times


@dataclass(frozen=True)
class SegmentRecord:
    """One segment emitted by the stream.

    ``stamp`` is the event time of the segment's end point (the point
    index when the feed carries no timestamps) — eviction horizons are
    expressed against it.  ``trailing`` marks records that a later
    append to the same trajectory will retract.
    """

    key: int
    traj_id: int
    start: np.ndarray
    end: np.ndarray
    weight: float
    stamp: float
    trailing: bool


@dataclass(frozen=True)
class StreamDelta:
    """Retract-then-insert instructions for one append."""

    inserted: Tuple[SegmentRecord, ...]
    retracted: Tuple[int, ...]

    def __bool__(self) -> bool:
        return bool(self.inserted or self.retracted)


class _TrajectoryState:
    __slots__ = ("partitioner", "weight", "times", "trailing_key")

    def __init__(self, partitioner: IncrementalPartitioner, weight: float):
        self.partitioner = partitioner
        self.weight = weight
        self.times: Optional[List[float]] = None
        self.trailing_key: Optional[int] = None


class TrajectoryStream:
    """Multi-trajectory append-only ingestion front end."""

    def __init__(self, suppression: float = 0.0):
        self.suppression = float(suppression)
        self._trajectories: Dict[int, _TrajectoryState] = {}
        self._next_key = 0

    # -- introspection -----------------------------------------------------
    @property
    def traj_ids(self) -> List[int]:
        return sorted(self._trajectories)

    def n_points(self, traj_id: int) -> int:
        state = self._trajectories.get(int(traj_id))
        return 0 if state is None else state.partitioner.n_points

    def characteristic_points(self, traj_id: int) -> List[int]:
        state = self._trajectories.get(int(traj_id))
        if state is None:
            raise TrajectoryError(f"unknown trajectory id {traj_id}")
        return state.partitioner.characteristic_points()

    # -- ingestion ---------------------------------------------------------
    def _take_key(self) -> int:
        key = self._next_key
        self._next_key += 1
        return key

    def _record(
        self,
        state: _TrajectoryState,
        traj_id: int,
        a: int,
        b: int,
        trailing: bool,
    ) -> SegmentRecord:
        points = state.partitioner.points
        stamp = state.times[b] if state.times is not None else float(b)
        return SegmentRecord(
            key=self._take_key(),
            traj_id=traj_id,
            start=points[a].copy(),
            end=points[b].copy(),
            weight=state.weight,
            stamp=stamp,
            trailing=trailing,
        )

    def append(
        self,
        traj_id: int,
        points: Union[Sequence[Sequence[float]], np.ndarray],
        times: Optional[Sequence[float]] = None,
        weight: Optional[float] = None,
    ) -> StreamDelta:
        """Append *points* to trajectory *traj_id* and return the delta.

        ``times`` (one stamp per appended point, non-decreasing across
        appends) enables timestamp-horizon eviction; a trajectory must
        be consistently timed or consistently untimed.  ``weight`` is
        fixed at the trajectory's first append (default 1.0); passing
        any explicit weight that differs from it later is an error,
        ``None`` means "keep the opening weight".
        """
        traj_id = int(traj_id)
        points = _as_point_batch(points)
        state = self._trajectories.get(traj_id)
        if state is None:
            state = _TrajectoryState(
                IncrementalPartitioner(self.suppression),
                _opening_weight(weight),
            )
            self._trajectories[traj_id] = state
            if times is not None:
                state.times = []
        elif weight is not None and state.weight != float(weight):
            raise TrajectoryError(
                f"trajectory {traj_id} was opened with weight "
                f"{state.weight}; cannot change it to {weight}"
            )
        if (times is not None) != (state.times is not None):
            raise TrajectoryError(
                f"trajectory {traj_id} must be consistently timed: "
                f"times {'given' if times is not None else 'missing'} now, "
                f"{'missing' if times is not None else 'given'} before"
            )
        if times is not None:
            times = _validated_times(times, points.shape[0])
            if state.times and times[0] < state.times[-1]:
                raise TrajectoryError("timestamps must be non-decreasing")

        part = state.partitioner
        previous_last = part.committed[-1] if part.n_points else None
        had_trailing = state.trailing_key is not None
        newly_committed = part.append(points)
        if times is not None:
            state.times.extend(float(t) for t in times)

        retracted: List[int] = []
        inserted: List[SegmentRecord] = []
        if had_trailing:
            # The trajectory's end moved: the old trailing segment is
            # stale whether or not new points were committed.
            retracted.append(state.trailing_key)
            state.trailing_key = None
        anchor = previous_last if previous_last is not None else 0
        for cp in newly_committed:
            inserted.append(self._record(state, traj_id, anchor, cp, False))
            anchor = cp
        last_committed = part.committed[-1]
        end = part.n_points - 1
        if end > last_committed:
            record = self._record(state, traj_id, last_committed, end, True)
            state.trailing_key = record.key
            inserted.append(record)
        return StreamDelta(tuple(inserted), tuple(retracted))

    def bulk_append(
        self,
        items: Sequence[
            Union[
                Trajectory,
                Tuple[int, Union[Sequence[Sequence[float]], np.ndarray]],
                Tuple[int, Union[Sequence[Sequence[float]], np.ndarray],
                      Optional[Sequence[float]]],
                Tuple[int, Union[Sequence[Sequence[float]], np.ndarray],
                      Optional[Sequence[float]], Optional[float]],
            ]
        ],
        scan: Optional[
            Tuple[Sequence[Sequence[int]], np.ndarray, np.ndarray]
        ] = None,
    ) -> StreamDelta:
        """Open many *new* trajectories at once through the batched
        phase-1 engine.

        *items* are :class:`~repro.model.trajectory.Trajectory` objects
        or ``(traj_id, points[, times[, weight]])`` tuples.  Every
        trajectory id must be unopened — bulk loading is a seed path,
        not a multi-trajectory append.

        Equivalent, record for record and state for state, to calling
        :meth:`append` once per item in order: the lock-step scanner
        commits bitwise-identical characteristic points and returns
        each trajectory's resumable ``(start_index, length)`` scan
        position, from which the per-trajectory incremental
        partitioners are restored — so later appends to a bulk-loaded
        trajectory continue exactly as if it had been fed point by
        point.

        *scan* hands over a precomputed ``(committed, starts,
        lengths)`` triple — exactly :func:`lockstep_scan`'s output for
        these items at this suppression, e.g. a Workspace partition
        artifact's scan states — in which case phase 1 is **skipped**
        entirely and the stream seeds from the cached result (same
        states bitwise, no scan work).
        """
        parsed: List[Tuple[int, np.ndarray, Optional[np.ndarray], float]] = []
        seen: set = set()
        for item in items:
            if isinstance(item, Trajectory):
                traj_id, points = item.traj_id, item.points
                times, weight = item.times, item.weight
            else:
                traj_id, points = int(item[0]), item[1]
                times = item[2] if len(item) > 2 else None
                weight = item[3] if len(item) > 3 else None
            points = _as_point_batch(points)
            if points.ndim != 2 or points.shape[0] == 0:
                raise TrajectoryError(
                    f"trajectory {traj_id}: need a non-empty (n, d) point "
                    f"array, got shape {points.shape}"
                )
            if not np.all(np.isfinite(points)):
                # append() inherits this check from the incremental
                # partitioner; the bulk path restores past it.
                raise TrajectoryError(
                    f"trajectory {traj_id}: points must be finite"
                )
            if traj_id in self._trajectories or traj_id in seen:
                raise TrajectoryError(
                    f"trajectory {traj_id} is already open; bulk_append "
                    f"only seeds new trajectories"
                )
            seen.add(traj_id)
            if times is not None:
                times = _validated_times(times, points.shape[0])
            parsed.append((traj_id, points, times, _opening_weight(weight)))
        if not parsed:
            return StreamDelta((), ())

        if scan is not None:
            committed, starts, lengths = scan
            if (
                len(committed) != len(parsed)
                or len(starts) != len(parsed)
                or len(lengths) != len(parsed)
            ):
                raise TrajectoryError(
                    f"precomputed scan covers {len(committed)} trajectories "
                    f"but {len(parsed)} items were given"
                )
            # Structural consistency per row: a scan handed over for the
            # wrong corpus (shorter/longer trajectories) must fail here,
            # not corrupt the session or crash deep in restore().
            for row, (traj_id, points, _, _) in enumerate(parsed):
                n = points.shape[0]
                cps = committed[row]
                start = int(starts[row])
                length = int(lengths[row])
                if (
                    not cps
                    or cps[0] != 0
                    or any(b <= a for a, b in zip(cps, cps[1:]))
                    or cps[-1] >= n
                    or not 0 <= start < n
                    or start != cps[-1]  # the scan resumes at the last cp
                    or length < 1
                    or start + length < n
                ):
                    raise TrajectoryError(
                        f"trajectory {traj_id}: precomputed scan state is "
                        f"inconsistent with the given points (was the "
                        f"partition artifact built over this corpus?)"
                    )
        else:
            ragged = RaggedPoints.from_arrays([p for _, p, _, _ in parsed])
            committed, starts, lengths = lockstep_scan(
                ragged, self.suppression
            )

        inserted: List[SegmentRecord] = []
        for row, (traj_id, points, times, weight) in enumerate(parsed):
            partitioner = IncrementalPartitioner.restore(
                self.suppression,
                points,
                committed[row],
                int(starts[row]),
                int(lengths[row]),
            )
            state = _TrajectoryState(partitioner, weight)
            if times is not None:
                state.times = [float(t) for t in times]
            self._trajectories[traj_id] = state
            cps = committed[row]
            for a, b in zip(cps, cps[1:]):
                inserted.append(self._record(state, traj_id, a, b, False))
            end = points.shape[0] - 1
            if end > cps[-1]:
                record = self._record(state, traj_id, cps[-1], end, True)
                state.trailing_key = record.key
                inserted.append(record)
        return StreamDelta(tuple(inserted), ())

    def __repr__(self) -> str:
        return (
            f"TrajectoryStream(n_trajectories={len(self._trajectories)}, "
            f"next_key={self._next_key})"
        )
