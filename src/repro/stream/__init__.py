"""Streaming TRACLUS: online ingestion, dynamic ε-graph maintenance,
and incremental cluster labels.

The batch pipeline (:mod:`repro.core.traclus`) recomputes everything
from scratch; this subsystem maintains the same outputs under
append-only point streams and sliding-window eviction:

* :mod:`repro.stream.ingest` — per-trajectory point appends are
  re-partitioned only on the affected suffix
  (:class:`~repro.partition.incremental.IncrementalPartitioner`),
  emitting segment insert/retract deltas;
* :mod:`repro.stream.dynamic_graph` — the ε-neighborhood relation is
  maintained under segment insert and evict, with edges bitwise
  identical to a batch :class:`~repro.cluster.neighbor_graph.NeighborGraph`
  rebuild (both run the same pair kernel);
* :mod:`repro.stream.online_dbscan` — DBSCAN labels are maintained
  incrementally (core promotion/demotion, union-find merges, bounded
  local reclustering on splits) and reproduce a fresh batch
  :class:`~repro.cluster.dbscan.LineSegmentDBSCAN` refit exactly;
* :mod:`repro.stream.view` — every update is described by a
  :class:`LabelDiff` in *stable* cluster ids (O(delta), not O(live));
  a :class:`LabelView` folds diffs back into the dense batch-identical
  label map;
* :mod:`repro.stream.pipeline` — :class:`StreamingTRACLUS` glues the
  pieces together and applies the eviction window;
* :mod:`repro.stream.checkpoint` — snapshot/restore of the whole
  streaming state, stable cluster identities included.

The sharded scale-out (K worker processes, one merger) lives in
:mod:`repro.shard` and is built entirely on these diffs.
"""

from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.dynamic_graph import DynamicNeighborGraph, StreamSegmentStore
from repro.stream.ingest import SegmentRecord, StreamDelta, TrajectoryStream
from repro.stream.online_dbscan import OnlineDBSCAN
from repro.stream.pipeline import StreamingTRACLUS, StreamUpdate
from repro.stream.view import LabelDiff, LabelView

__all__ = [
    "DynamicNeighborGraph",
    "LabelDiff",
    "LabelView",
    "OnlineDBSCAN",
    "SegmentRecord",
    "StreamDelta",
    "StreamSegmentStore",
    "StreamingTRACLUS",
    "StreamUpdate",
    "TrajectoryStream",
    "load_checkpoint",
    "save_checkpoint",
]
