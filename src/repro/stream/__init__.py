"""Streaming TRACLUS: online ingestion, dynamic ε-graph maintenance,
and incremental cluster labels.

The batch pipeline (:mod:`repro.core.traclus`) recomputes everything
from scratch; this subsystem maintains the same outputs under
append-only point streams and sliding-window eviction:

* :mod:`repro.stream.ingest` — per-trajectory point appends are
  re-partitioned only on the affected suffix
  (:class:`~repro.partition.incremental.IncrementalPartitioner`),
  emitting segment insert/retract deltas;
* :mod:`repro.stream.dynamic_graph` — the ε-neighborhood relation is
  maintained under segment insert and evict, with edges bitwise
  identical to a batch :class:`~repro.cluster.neighbor_graph.NeighborGraph`
  rebuild (both run the same pair kernel);
* :mod:`repro.stream.online_dbscan` — DBSCAN labels are maintained
  incrementally (core promotion/demotion, union-find merges, bounded
  local reclustering on splits) and reproduce a fresh batch
  :class:`~repro.cluster.dbscan.LineSegmentDBSCAN` refit exactly;
* :mod:`repro.stream.pipeline` — :class:`StreamingTRACLUS` glues the
  three together and applies the eviction window;
* :mod:`repro.stream.checkpoint` — snapshot/restore of the whole
  streaming state.
"""

from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.dynamic_graph import DynamicNeighborGraph, StreamSegmentStore
from repro.stream.ingest import SegmentRecord, StreamDelta, TrajectoryStream
from repro.stream.online_dbscan import OnlineDBSCAN
from repro.stream.pipeline import StreamingTRACLUS, StreamUpdate

__all__ = [
    "DynamicNeighborGraph",
    "OnlineDBSCAN",
    "SegmentRecord",
    "StreamDelta",
    "StreamSegmentStore",
    "StreamingTRACLUS",
    "StreamUpdate",
    "TrajectoryStream",
    "load_checkpoint",
    "save_checkpoint",
]
