"""First-class label diffs and the incremental label view they fold into.

``StreamingTRACLUS`` used to rebuild the full O(live) label array on
every append just to report what changed.  :class:`LabelDiff` is the
replacement: an O(delta) description of one update in terms of *stable
cluster ids* — the :class:`~repro.cluster.labeling.CoreGraphLabeler`
component tokens, which survive appends, window evictions, and slot
compaction (a merge keeps the survivor's token, a repair that does not
split keeps the original token).

Stable ids deliberately differ from the dense batch labels
(``labels()``): dense ids are formation-order *ranks* after the Step-3
filter, so a single merge or visibility flip renumbers every later
cluster — any diff expressed in dense ids is O(live) in the worst
case.  A :class:`LabelView` folds diffs back into a full slot map and
derives the dense batch-identical array on demand: visible tokens are
ranked by their formation key (the component's smallest core slot) and
renumbered densely, which is exactly the order
``CoreGraphLabeler.labels_for`` + ``apply_cardinality_filter``
produce.  The property suite pins the round trip bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ClusteringError
from repro.model.cluster import NOISE


@dataclass(frozen=True)
class LabelDiff:
    """What one update did to the stable-id label view.

    ``changed`` maps slot -> (old, new) stable visible labels, where
    ``None`` means "not in the window" on that side and ``-1`` is
    noise (which includes membership in a cluster currently dropped by
    the Step-3 filter).  Every slot whose visible label moved has an
    entry — including the members of clusters that merged, split, or
    flipped visibility — so folding ``changed`` alone reproduces the
    full view; the event fields below are cluster-level metadata for
    consumers that track cluster identities.

    ``minima`` carries the formation key (smallest core slot) for
    every visible cluster the update touched; a view needs those to
    rank visible clusters into dense batch labels.  ``retired`` lists
    tokens that no longer exist (absorbed by a merge, replaced by a
    split, or emptied) so views can drop their bookkeeping.

    ``touched`` counts the slots whose assignment was re-derived — the
    actual per-update label work, which the benchmarks pin as O(delta)
    rather than O(live).
    """

    changed: Dict[int, Tuple[Optional[int], Optional[int]]]
    merges: Tuple[Tuple[int, int], ...] = ()
    splits: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    shown: Tuple[int, ...] = ()
    hidden: Tuple[int, ...] = ()
    minima: Dict[int, int] = field(default_factory=dict)
    retired: Tuple[int, ...] = ()
    touched: int = 0

    def __bool__(self) -> bool:
        return bool(self.changed)


class LabelView:
    """A slot -> stable-label map maintained by folding diffs.

    The view is what a served consumer keeps: apply every
    :class:`LabelDiff` in order (and :meth:`remap` when the producer
    compacts its slot store) and :meth:`dense_labels` answers the
    batch question — bitwise identical to
    :meth:`OnlineDBSCAN.labels <repro.stream.online_dbscan.OnlineDBSCAN.labels>`
    on the producer — without the producer ever materializing it.
    """

    __slots__ = ("_labels", "_minima", "_counts", "version")

    def __init__(self):
        self._labels: Dict[int, int] = {}
        self._minima: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}
        self.version = 0

    # -- folding -----------------------------------------------------------
    def apply(self, diff: LabelDiff) -> None:
        """Fold one diff (minima first: ``changed`` may introduce
        clusters whose rank key arrives in the same diff)."""
        self._minima.update(diff.minima)
        for slot, (_, new) in diff.changed.items():
            old = self._labels.pop(slot, None)
            if old is not None and old >= 0:
                remaining = self._counts[old] - 1
                if remaining:
                    self._counts[old] = remaining
                else:
                    del self._counts[old]
            if new is None:
                continue
            self._labels[slot] = new
            if new >= 0:
                self._counts[new] = self._counts.get(new, 0) + 1
        for token in diff.retired:
            self._minima.pop(token, None)
        self.version += 1

    def remap(self, mapping: Dict[int, int]) -> None:
        """Follow a producer-side slot compaction (old -> new ids).
        Formation keys are slot ids too, so they are renamed as well;
        the map is monotone, so ranks are unchanged."""
        self._labels = {
            mapping[slot]: label for slot, label in self._labels.items()
        }
        self._minima = {
            token: mapping[slot] for token, slot in self._minima.items()
        }
        self.version += 1

    # -- queries -----------------------------------------------------------
    @property
    def n_live(self) -> int:
        return len(self._labels)

    @property
    def n_clusters(self) -> int:
        """Visible clusters (the dense label space size)."""
        return len(self._counts)

    def stable_label(self, slot: int) -> Optional[int]:
        """Stable visible label of *slot* (None = not in the window)."""
        return self._labels.get(slot)

    def dense_rank(self) -> Dict[int, int]:
        """Stable token -> dense formation-order rank for the visible
        clusters."""
        try:
            ordered = sorted(self._counts, key=self._minima.__getitem__)
        except KeyError as missing:  # pragma: no cover - producer bug
            raise ClusteringError(
                f"label view has no formation key for cluster {missing}; "
                f"was a diff applied out of order?"
            )
        return {token: rank for rank, token in enumerate(ordered)}

    def dense_labels(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(slots, labels)`` — live slots ascending with dense batch
        labels, exactly what the producer's ``labels()`` returns."""
        slots = np.fromiter(
            sorted(self._labels), dtype=np.int64, count=len(self._labels)
        )
        rank = self.dense_rank()
        labels = np.fromiter(
            (
                rank.get(self._labels[int(slot)], NOISE)
                for slot in slots
            ),
            dtype=np.int64,
            count=slots.size,
        )
        return slots, labels

    def dense_map(self) -> Dict[int, int]:
        """Slot -> dense label over the live set (``-1`` noise)."""
        rank = self.dense_rank()
        return {
            slot: rank.get(label, NOISE)
            for slot, label in self._labels.items()
        }

    def __repr__(self) -> str:
        return (
            f"LabelView(n_live={self.n_live}, "
            f"n_clusters={self.n_clusters}, version={self.version})"
        )
