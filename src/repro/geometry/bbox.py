"""Axis-aligned bounding boxes.

The spatial-index substrate (R-tree and uniform grid, Section 4.2
Lemma 3 of the paper) stores the minimum bounding rectangle of each
line segment.  Boxes are d-dimensional to match the rest of the
library.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.exceptions import GeometryError


class BoundingBox:
    """A d-dimensional axis-aligned box ``[lo, hi]``.

    Degenerate boxes (``lo == hi`` in some axes) are valid — a vertical
    or horizontal segment produces one.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise GeometryError(
                f"bounding box corners must be 1-D and congruent, got "
                f"{lo.shape} vs {hi.shape}"
            )
        if np.any(lo > hi):
            raise GeometryError("bounding box has lo > hi")
        self.lo = lo
        self.hi = hi

    # -- constructors ----------------------------------------------------
    @classmethod
    def of_points(cls, points: np.ndarray) -> "BoundingBox":
        """Smallest box containing every row of ``(n, d)`` *points*."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise GeometryError("need a non-empty (n, d) point array")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def of_segment(cls, start: np.ndarray, end: np.ndarray) -> "BoundingBox":
        """Bounding box of a single segment."""
        start = np.asarray(start, dtype=np.float64)
        end = np.asarray(end, dtype=np.float64)
        return cls(np.minimum(start, end), np.maximum(start, end))

    @classmethod
    def union_all(cls, boxes: Iterable["BoundingBox"]) -> "BoundingBox":
        """Smallest box containing every box in *boxes*."""
        boxes = list(boxes)
        if not boxes:
            raise GeometryError("union of zero boxes is undefined")
        lo = np.min([b.lo for b in boxes], axis=0)
        hi = np.max([b.hi for b in boxes], axis=0)
        return cls(lo, hi)

    # -- predicates ------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two (closed) boxes overlap."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.lo <= point) and np.all(point <= self.hi))

    def contains_box(self, other: "BoundingBox") -> bool:
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def expanded(self, margin: float) -> "BoundingBox":
        """Box grown by *margin* on every side (used for ε-query windows)."""
        if margin < 0:
            raise GeometryError("margin must be non-negative")
        return BoundingBox(self.lo - margin, self.hi + margin)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    # -- metrics (used by the R-tree split/choose heuristics) -------------
    def volume(self) -> float:
        """Product of extents (area in 2-D)."""
        return float(np.prod(self.extent))

    def margin(self) -> float:
        """Sum of extents (perimeter/2 in 2-D)."""
        return float(np.sum(self.extent))

    def enlargement(self, other: "BoundingBox") -> float:
        """Volume increase needed to also cover *other*."""
        return self.union(other).volume() - self.volume()

    def min_distance_to_point(self, point: np.ndarray) -> float:
        """Smallest Euclidean distance from *point* to the box (0 inside)."""
        point = np.asarray(point, dtype=np.float64)
        delta = np.maximum(np.maximum(self.lo - point, point - self.hi), 0.0)
        return float(np.linalg.norm(delta))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundingBox):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundingBox(lo={self.lo.tolist()}, hi={self.hi.tolist()})"
