"""Projection of points onto the supporting line of a segment.

Implements Formula (4) of the paper: for a segment ``Li = si ei`` and a
point ``p``, the projection is ``ps = si + u * (ei - si)`` with
``u = ((p - si) . (ei - si)) / ||ei - si||^2``.

The projection is onto the *infinite* supporting line, not clamped to
the segment — the paper's perpendicular/parallel distances rely on the
unclamped value (a projection point may fall before ``si`` or past
``ei``; the parallel distance then measures how far outside it fell).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DegenerateSegmentError


def projection_coefficient(
    start: np.ndarray, end: np.ndarray, point: np.ndarray
) -> float:
    """Return the scalar ``u`` of Formula (4).

    ``u = 0`` means *point* projects exactly onto *start*, ``u = 1``
    onto *end*; values outside [0, 1] fall outside the segment.

    Raises :class:`DegenerateSegmentError` when ``start == end`` because
    a zero-length segment has no supporting line.
    """
    direction = end - start
    squared_length = float(np.dot(direction, direction))
    if squared_length == 0.0:
        raise DegenerateSegmentError(
            "cannot project onto a zero-length segment"
        )
    return float(np.dot(point - start, direction)) / squared_length


def project_point_onto_line(
    start: np.ndarray, end: np.ndarray, point: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Project *point* onto the line through *start* and *end*.

    Returns ``(projection_point, u)`` where ``u`` is the coefficient of
    :func:`projection_coefficient`.
    """
    u = projection_coefficient(start, end, point)
    projection = start + u * (end - start)
    return projection, u
