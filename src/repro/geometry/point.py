"""Point and vector primitives.

A *point* is a 1-D :class:`numpy.ndarray` of ``float64`` with ``d >= 2``
entries; a *point array* is a 2-D array of shape ``(n, d)``.  These
helpers normalise user input (lists, tuples, integer arrays) into that
canonical form and provide the handful of vector operations the rest of
the library builds on.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.exceptions import GeometryError

ArrayLike = Union[Sequence[float], np.ndarray]


def as_point(value: ArrayLike) -> np.ndarray:
    """Coerce *value* to a 1-D float64 point.

    Raises :class:`GeometryError` if the input is not 1-D or has fewer
    than two coordinates (the paper works in d >= 2 dimensions).
    """
    point = np.asarray(value, dtype=np.float64)
    if point.ndim != 1:
        raise GeometryError(f"a point must be 1-D, got shape {point.shape}")
    if point.shape[0] < 2:
        raise GeometryError(
            f"a point needs at least 2 coordinates, got {point.shape[0]}"
        )
    if not np.all(np.isfinite(point)):
        raise GeometryError(f"point has non-finite coordinates: {point!r}")
    return point


def as_points(values: Union[Iterable[ArrayLike], np.ndarray]) -> np.ndarray:
    """Coerce *values* to a 2-D ``(n, d)`` float64 array of points."""
    points = np.asarray(values, dtype=np.float64)
    if points.ndim != 2:
        raise GeometryError(f"points must be 2-D (n, d), got shape {points.shape}")
    if points.shape[1] < 2:
        raise GeometryError(
            f"points need at least 2 coordinates, got {points.shape[1]}"
        )
    if not np.all(np.isfinite(points)):
        raise GeometryError("point array has non-finite coordinates")
    return points


def dot(a: np.ndarray, b: np.ndarray) -> float:
    """Dot product of two vectors as a Python float."""
    return float(np.dot(a, b))


def norm(vector: np.ndarray) -> float:
    """Euclidean norm ``||v||`` of a vector as a Python float."""
    return float(np.linalg.norm(vector))


def euclidean(a: ArrayLike, b: ArrayLike) -> float:
    """Euclidean distance between two points."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise GeometryError(
            f"dimension mismatch: {a.shape} vs {b.shape}"
        )
    return float(np.linalg.norm(a - b))


def unit(vector: np.ndarray) -> np.ndarray:
    """Unit vector in the direction of *vector*.

    Raises :class:`GeometryError` for the zero vector, which has no
    direction.
    """
    length = np.linalg.norm(vector)
    if length == 0.0:
        raise GeometryError("the zero vector has no direction")
    return np.asarray(vector, dtype=np.float64) / length
