"""Low-level d-dimensional geometry substrate.

The paper's distance function (Section 2.3) is built from point/vector
primitives: Euclidean norms, dot products, projections of a point onto
the supporting line of a segment (Formula 4), the intersecting angle of
two segments (Formula 5), and a 2-D axis rotation used when generating
representative trajectories (Formula 9).  This subpackage implements all
of them over plain NumPy arrays.
"""

from repro.geometry.point import (
    as_point,
    as_points,
    dot,
    euclidean,
    norm,
    unit,
)
from repro.geometry.projection import (
    project_point_onto_line,
    projection_coefficient,
)
from repro.geometry.rotation import Rotation2D, angle_to_x_axis
from repro.geometry.bbox import BoundingBox

__all__ = [
    "as_point",
    "as_points",
    "dot",
    "euclidean",
    "norm",
    "unit",
    "project_point_onto_line",
    "projection_coefficient",
    "Rotation2D",
    "angle_to_x_axis",
    "BoundingBox",
]
