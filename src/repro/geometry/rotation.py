"""2-D axis rotation used by representative-trajectory generation.

Formula (9) of the paper rotates the coordinate axes so the X axis is
parallel to a cluster's *average direction vector*:

    [x']   [ cos phi   sin phi ] [x]
    [y'] = [ -sin phi  cos phi ] [y]

Note this is an *axis* rotation (alias transform): the point stays put
and the coordinate frame turns by ``phi``, which is why the matrix is
the transpose of the usual counter-clockwise point rotation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GeometryError


def angle_to_x_axis(vector: np.ndarray) -> float:
    """Angle ``phi`` (radians, in (-pi, pi]) from the +X axis to *vector*.

    The paper obtains ``phi`` via the inner product with the unit vector
    ``x_hat``; we use :func:`math.atan2`, which additionally recovers the
    sign so that rotation works for vectors below the X axis too.
    """
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (2,):
        raise GeometryError(f"axis rotation is 2-D only, got shape {vector.shape}")
    if vector[0] == 0.0 and vector[1] == 0.0:
        raise GeometryError("zero vector has no angle")
    return math.atan2(float(vector[1]), float(vector[0]))


class Rotation2D:
    """Rotation of the coordinate *axes* by ``phi`` radians.

    ``forward`` maps XY coordinates into the rotated X'Y' frame
    (Formula 9); ``inverse`` maps back ("undo the rotation", Figure 15
    line 11).
    """

    __slots__ = ("phi", "_matrix", "_inverse")

    def __init__(self, phi: float):
        self.phi = float(phi)
        c, s = math.cos(self.phi), math.sin(self.phi)
        # Axis rotation: [x', y'] = [[c, s], [-s, c]] @ [x, y]
        self._matrix = np.array([[c, s], [-s, c]], dtype=np.float64)
        self._inverse = self._matrix.T  # rotation matrices are orthogonal

    @classmethod
    def aligning_x_axis_with(cls, vector: np.ndarray) -> "Rotation2D":
        """Rotation that makes the X' axis parallel to *vector*."""
        return cls(angle_to_x_axis(vector))

    def forward(self, points: np.ndarray) -> np.ndarray:
        """Rotate ``(n, 2)`` points (or a single point) into X'Y'."""
        points = np.asarray(points, dtype=np.float64)
        return points @ self._matrix.T

    def inverse(self, points: np.ndarray) -> np.ndarray:
        """Rotate ``(n, 2)`` points (or a single point) back into XY."""
        points = np.asarray(points, dtype=np.float64)
        return points @ self._inverse.T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rotation2D(phi={self.phi:.6f})"
